"""Closed d-dimensional balls.

The range predicate of a probabilistic range query integrates the query
density over the sphere of radius δ centred at each target object
(Eq. 3 of the paper); the BF strategy prunes and accepts with spheres of
radii α∥ and α⊥.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import DimensionMismatchError, GeometryError
from repro.geometry.mbr import Rect

__all__ = ["Sphere", "unit_ball_volume"]

_ArrayLike = Sequence[float] | np.ndarray


def unit_ball_volume(dim: int) -> float:
    """Volume of the d-dimensional unit ball, π^{d/2} / Γ(d/2 + 1)."""
    if dim < 1:
        raise GeometryError(f"dimension must be >= 1, got {dim}")
    return math.pi ** (dim / 2.0) / math.gamma(dim / 2.0 + 1.0)


class Sphere:
    """An immutable closed ball with a ``center`` and ``radius >= 0``."""

    __slots__ = ("_center", "_radius")

    def __init__(self, center: _ArrayLike, radius: float):
        c = np.asarray(center, dtype=float)
        if c.ndim != 1 or c.size == 0:
            raise GeometryError(f"center must be a 1-D sequence, got shape {c.shape}")
        if not np.all(np.isfinite(c)):
            raise GeometryError(f"center must be finite, got {c}")
        if not math.isfinite(radius) or radius < 0:
            raise GeometryError(f"radius must be finite and >= 0, got {radius}")
        c.setflags(write=False)
        self._center = c
        self._radius = float(radius)

    @property
    def center(self) -> np.ndarray:
        return self._center

    @property
    def radius(self) -> float:
        return self._radius

    @property
    def dim(self) -> int:
        return self._center.size

    def volume(self) -> float:
        return unit_ball_volume(self.dim) * self._radius**self.dim

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------

    def contains_point(self, point: _ArrayLike) -> bool:
        p = np.asarray(point, dtype=float)
        if p.shape != self._center.shape:
            raise DimensionMismatchError(self.dim, p.size, "point")
        return bool(np.dot(p - self._center, p - self._center) <= self._radius**2)

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Vectorised membership test for the rows of ``points``."""
        pts = np.asarray(points, dtype=float)
        deltas = pts - self._center
        return np.einsum("ij,ij->i", deltas, deltas) <= self._radius**2

    def intersects_sphere(self, other: "Sphere") -> bool:
        if other.dim != self.dim:
            raise DimensionMismatchError(self.dim, other.dim, "sphere")
        gap = np.linalg.norm(self._center - other._center)
        return bool(gap <= self._radius + other._radius)

    def intersects_rect(self, rect: Rect) -> bool:
        return rect.intersects_sphere(self._center, self._radius)

    def contains_rect(self, rect: Rect) -> bool:
        """True when every corner of ``rect`` lies inside the ball."""
        if rect.dim != self.dim:
            raise DimensionMismatchError(self.dim, rect.dim, "rect")
        return rect.max_distance(self._center) <= self._radius

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    def bounding_rect(self) -> Rect:
        return Rect.from_center(self._center, np.full(self.dim, self._radius))

    def sample_surface(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform samples on the sphere's surface (for visual debugging)."""
        z = rng.standard_normal((n, self.dim))
        z /= np.linalg.norm(z, axis=1, keepdims=True)
        return self._center + self._radius * z

    def sample_interior(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform samples inside the ball (used by plain Monte Carlo)."""
        z = rng.standard_normal((n, self.dim))
        z /= np.linalg.norm(z, axis=1, keepdims=True)
        radii = self._radius * rng.random(n) ** (1.0 / self.dim)
        return self._center + z * radii[:, None]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Sphere):
            return NotImplemented
        return bool(
            np.array_equal(self._center, other._center)
            and self._radius == other._radius
        )

    def __hash__(self) -> int:
        return hash((self._center.tobytes(), self._radius))

    def __repr__(self) -> str:
        coords = ", ".join(f"{c:g}" for c in self._center)
        return f"Sphere(center=({coords}), radius={self._radius:g})"

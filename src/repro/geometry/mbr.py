"""Axis-aligned d-dimensional rectangles (minimum bounding rectangles).

``Rect`` is the workhorse shape of the library: R-tree nodes store them,
the RR strategy derives one from the θ-region (Property 2), and Phase 1 of
every strategy issues a rectangle range search.  Instances are immutable;
all mutating-looking operations return new rectangles.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import DimensionMismatchError, GeometryError

__all__ = ["Rect"]

_ArrayLike = Sequence[float] | np.ndarray


def _as_vector(values: _ArrayLike, name: str) -> np.ndarray:
    vec = np.asarray(values, dtype=float)
    if vec.ndim != 1:
        raise GeometryError(f"{name} must be a 1-D sequence, got shape {vec.shape}")
    if vec.size == 0:
        raise GeometryError(f"{name} must not be empty")
    if not np.all(np.isfinite(vec)):
        raise GeometryError(f"{name} must be finite, got {vec}")
    return vec


class Rect:
    """An immutable axis-aligned rectangle ``[low_i, high_i]`` per dimension.

    Parameters
    ----------
    lows, highs:
        Coordinate-wise lower and upper bounds.  ``lows[i] <= highs[i]`` is
        required for every dimension; degenerate (zero-extent) rectangles
        are allowed because points are stored as such in the R-tree.
    """

    __slots__ = ("_lows", "_highs")

    def __init__(self, lows: _ArrayLike, highs: _ArrayLike):
        lows_vec = _as_vector(lows, "lows")
        highs_vec = _as_vector(highs, "highs")
        if lows_vec.shape != highs_vec.shape:
            raise DimensionMismatchError(lows_vec.size, highs_vec.size, "highs")
        if np.any(lows_vec > highs_vec):
            raise GeometryError(
                f"every low must be <= the matching high, got lows={lows_vec}, "
                f"highs={highs_vec}"
            )
        lows_vec.setflags(write=False)
        highs_vec.setflags(write=False)
        self._lows = lows_vec
        self._highs = highs_vec

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_point(cls, point: _ArrayLike) -> "Rect":
        """Degenerate rectangle covering exactly one point."""
        vec = _as_vector(point, "point")
        return cls(vec, vec.copy())

    @classmethod
    def from_center(cls, center: _ArrayLike, half_widths: _ArrayLike) -> "Rect":
        """Rectangle centred at ``center`` extending ``half_widths[i]`` each way."""
        c = _as_vector(center, "center")
        h = _as_vector(half_widths, "half_widths")
        if c.shape != h.shape:
            raise DimensionMismatchError(c.size, h.size, "half_widths")
        if np.any(h < 0):
            raise GeometryError(f"half widths must be non-negative, got {h}")
        return cls(c - h, c + h)

    @classmethod
    def union_of(cls, rects: Iterable["Rect"]) -> "Rect":
        """Smallest rectangle enclosing every rectangle in ``rects``."""
        rect_list = list(rects)
        if not rect_list:
            raise GeometryError("cannot take the union of zero rectangles")
        lows = np.minimum.reduce([r._lows for r in rect_list])
        highs = np.maximum.reduce([r._highs for r in rect_list])
        return cls(lows, highs)

    @classmethod
    def bounding_points(cls, points: np.ndarray) -> "Rect":
        """Smallest rectangle enclosing the rows of a 2-D point array."""
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise GeometryError(
                f"points must be a non-empty 2-D array, got shape {pts.shape}"
            )
        return cls(pts.min(axis=0), pts.max(axis=0))

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def lows(self) -> np.ndarray:
        return self._lows

    @property
    def highs(self) -> np.ndarray:
        return self._highs

    @property
    def dim(self) -> int:
        return self._lows.size

    @property
    def center(self) -> np.ndarray:
        return (self._lows + self._highs) / 2.0

    @property
    def extents(self) -> np.ndarray:
        """Side length along each dimension."""
        return self._highs - self._lows

    def volume(self) -> float:
        """d-dimensional volume (area for d = 2)."""
        return float(np.prod(self.extents))

    def margin(self) -> float:
        """Sum of side lengths — the R*-tree split criterion's perimeter proxy."""
        return float(np.sum(self.extents))

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------

    def contains_point(self, point: _ArrayLike) -> bool:
        p = np.asarray(point, dtype=float)
        if p.shape != self._lows.shape:
            raise DimensionMismatchError(self.dim, p.size, "point")
        return bool(np.all(p >= self._lows) and np.all(p <= self._highs))

    def contains_rect(self, other: "Rect") -> bool:
        self._check_dim(other)
        return bool(
            np.all(other._lows >= self._lows) and np.all(other._highs <= self._highs)
        )

    def intersects(self, other: "Rect") -> bool:
        self._check_dim(other)
        return bool(
            np.all(self._lows <= other._highs) and np.all(other._lows <= self._highs)
        )

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Vectorised membership test for the rows of ``points``."""
        pts = np.asarray(points, dtype=float)
        return np.all((pts >= self._lows) & (pts <= self._highs), axis=1)

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------

    def union(self, other: "Rect") -> "Rect":
        self._check_dim(other)
        return Rect(
            np.minimum(self._lows, other._lows), np.maximum(self._highs, other._highs)
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """Overlap rectangle, or ``None`` when the rectangles are disjoint."""
        self._check_dim(other)
        lows = np.maximum(self._lows, other._lows)
        highs = np.minimum(self._highs, other._highs)
        if np.any(lows > highs):
            return None
        return Rect(lows, highs)

    def intersection_volume(self, other: "Rect") -> float:
        overlap = self.intersection(other)
        return 0.0 if overlap is None else overlap.volume()

    def enlargement(self, other: "Rect") -> float:
        """Volume increase needed to absorb ``other`` — ChooseSubtree metric."""
        return self.union(other).volume() - self.volume()

    def expand(self, amount: float) -> "Rect":
        """Dilate every face outward by ``amount`` (may be negative to shrink)."""
        if amount < 0 and np.any(self.extents + 2 * amount < 0):
            raise GeometryError(
                f"shrinking by {-amount} would invert the rectangle {self}"
            )
        return Rect(self._lows - amount, self._highs + amount)

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------

    def min_distance(self, point: _ArrayLike) -> float:
        """Euclidean distance from ``point`` to the nearest point of the rectangle.

        Zero when the point is inside.  This is the classic R-tree MINDIST.
        """
        p = np.asarray(point, dtype=float)
        if p.shape != self._lows.shape:
            raise DimensionMismatchError(self.dim, p.size, "point")
        deltas = np.maximum(self._lows - p, 0.0) + np.maximum(p - self._highs, 0.0)
        return float(np.linalg.norm(deltas))

    def max_distance(self, point: _ArrayLike) -> float:
        """Distance from ``point`` to the farthest corner of the rectangle."""
        p = np.asarray(point, dtype=float)
        if p.shape != self._lows.shape:
            raise DimensionMismatchError(self.dim, p.size, "point")
        deltas = np.maximum(np.abs(p - self._lows), np.abs(p - self._highs))
        return float(np.linalg.norm(deltas))

    def intersects_sphere(self, center: _ArrayLike, radius: float) -> bool:
        """True when the rectangle and the closed ball overlap."""
        return self.min_distance(center) <= radius

    # ------------------------------------------------------------------
    # Dunder support
    # ------------------------------------------------------------------

    def _check_dim(self, other: "Rect") -> None:
        if other.dim != self.dim:
            raise DimensionMismatchError(self.dim, other.dim, "rectangle")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return bool(
            np.array_equal(self._lows, other._lows)
            and np.array_equal(self._highs, other._highs)
        )

    def __hash__(self) -> int:
        return hash((self._lows.tobytes(), self._highs.tobytes()))

    def __iter__(self) -> Iterator[tuple[float, float]]:
        """Iterate per-dimension ``(low, high)`` pairs."""
        return iter(zip(self._lows.tolist(), self._highs.tolist()))

    def __repr__(self) -> str:
        pairs = ", ".join(f"[{lo:g}, {hi:g}]" for lo, hi in self)
        return f"Rect({pairs})"

"""Eigenbasis-aligned boxes for the oblique-region strategy (OR).

The OR strategy (Section IV-B of the paper) bounds the θ-region by a box
aligned with the *ellipsoid axes* rather than the world axes and inflates
it by δ on every side (Fig. 5).  Property 3 rotates candidates into the
eigenbasis, where the box test becomes a plain per-coordinate interval
check (Fig. 7, Eq. 20).
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from repro.errors import DimensionMismatchError, GeometryError
from repro.geometry.mbr import Rect
from repro.geometry.transforms import EigenTransform

__all__ = ["ObliqueBox"]

_ArrayLike = Sequence[float] | np.ndarray


class ObliqueBox:
    """A box centred at q, aligned with the eigenvectors of Σ.

    In eigenbasis coordinates y = Eᵀ(x − q), the box is
    ``|y_i| ≤ half_widths[i]`` for every dimension.  For the OR strategy the
    half widths are ``r_θ·√λᵢ + δ`` — the ellipsoid semi-axis plus the
    query distance (Eq. 20 written in Σ-eigenvalue form).
    """

    __slots__ = ("_transform", "_half_widths")

    def __init__(self, transform: EigenTransform, half_widths: _ArrayLike):
        widths = np.asarray(half_widths, dtype=float)
        if widths.shape != (transform.dim,):
            raise DimensionMismatchError(transform.dim, widths.size, "half_widths")
        if np.any(widths < 0) or not np.all(np.isfinite(widths)):
            raise GeometryError(f"half widths must be finite and >= 0, got {widths}")
        widths.setflags(write=False)
        self._transform = transform
        self._half_widths = widths

    @classmethod
    def for_range_query(
        cls, center: _ArrayLike, sigma: np.ndarray, r_theta: float, delta: float
    ) -> "ObliqueBox":
        """The OR filtering box: θ-region semi-axes inflated by δ."""
        if r_theta < 0 or delta < 0:
            raise GeometryError(
                f"r_theta and delta must be >= 0, got {r_theta}, {delta}"
            )
        transform = EigenTransform(center, sigma)
        half_widths = r_theta * np.sqrt(transform.eigenvalues) + delta
        return cls(transform, half_widths)

    @property
    def center(self) -> np.ndarray:
        return self._transform.center

    @property
    def half_widths(self) -> np.ndarray:
        return self._half_widths

    @property
    def dim(self) -> int:
        return self._transform.dim

    @property
    def transform(self) -> EigenTransform:
        return self._transform

    def volume(self) -> float:
        return float(np.prod(2.0 * self._half_widths))

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Vectorised membership test (Property 3 filtering)."""
        y = self._transform.to_eigen(points)
        return np.all(np.abs(y) <= self._half_widths, axis=1)

    def contains_point(self, point: _ArrayLike) -> bool:
        return bool(self.contains_points(np.asarray(point, dtype=float)[None, :])[0])

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    def corners(self) -> np.ndarray:
        """All 2^d corner points in world coordinates."""
        signs = np.array(list(itertools.product((-1.0, 1.0), repeat=self.dim)))
        return self._transform.to_world(signs * self._half_widths)

    def bounding_rect(self) -> Rect:
        """Tight world-axis-aligned bounding box of the oblique box.

        The extent along world axis j is Σᵢ |E_{ji}|·w_i, which avoids
        enumerating 2^d corners in higher dimensions.
        """
        extents = np.abs(self._transform.basis) @ self._half_widths
        return Rect.from_center(self.center, extents)

    def __repr__(self) -> str:
        return (
            f"ObliqueBox(dim={self.dim}, "
            f"half_widths={np.round(self._half_widths, 4).tolist()})"
        )

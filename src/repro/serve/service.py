"""The embedded query service: one resident process, many clients.

:class:`QueryService` owns a :class:`~repro.core.database.SpatialDatabase`
plus one warm :class:`~repro.core.engine.QueryEngine` (and, with
``strategies="auto"``, the database's shared
:class:`~repro.core.planner.QueryPlanner`, so plan-cache warm-up is paid
once across all clients).  Incoming :class:`~repro.serve.request.PRQRequest`
objects land in a bounded :class:`~repro.serve.batching.AdmissionQueue`;
a single scheduler thread drains them under the batch-window/max-batch
policy and coalesces each drain into one
:meth:`~repro.core.engine.QueryEngine.run_batch` call — concurrent
clients get the engine's batch speedup without knowing about each other.

Service guarantees (the contract ``docs/serving.md`` spells out):

- **Admission control** — a full queue rejects immediately with a typed
  ``overloaded`` response; ``submit`` never blocks and never throws for
  load reasons.
- **Deadline awareness** — a request still queued past its deadline gets
  ``deadline_exceeded``; one that would predictably blow its budget is
  downgraded to sandwich-bound evaluation and answered ``degraded`` with
  sound probability bounds (:mod:`repro.serve.degrade`).
- **Fault isolation** — a request whose execution raises fails alone
  (``run_batch(..., return_errors=True)``); the scheduler, the pool and
  every other in-flight request are unaffected.
- **Determinism** — non-degraded responses are bit-identical to running
  the same query through ``run_batch`` directly: the default integrator
  (the deterministic cascade) draws no randomness, and sampling
  integrators are forked from each request's parameter-derived seed, so
  coalescing never changes results.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import asdict, dataclass, field

from repro.core.engine import QueryResult
from repro.core.kinds import query_kind
from repro.errors import (
    DeadlineExceededError,
    OverloadedError,
    QueryError,
    ServiceClosedError,
    ServiceError,
)
from repro.integrate.base import ProbabilityIntegrator
from repro.integrate.cascade import CascadeIntegrator
from repro.obs import QUEUE_BUCKETS, TIME_BUCKETS, Observability
from repro.serve.batching import AdmissionQueue
from repro.serve.cache import ResultCache
from repro.serve.degrade import CostTracker, degraded_execute
from repro.serve.monitor import SubscriptionManager
from repro.serve.request import (
    PRQRequest,
    PRQResponse,
    STATUS_DEADLINE_EXCEEDED,
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_OVERLOADED,
)

__all__ = ["ServiceConfig", "ServiceSnapshot", "QueryService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs for one :class:`QueryService` (all have serving defaults).

    ``max_batch``/``batch_window`` are the micro-batching policy: a drain
    coalesces at most ``max_batch`` requests and waits at most
    ``batch_window`` seconds after the first arrival for company.
    ``max_queue`` bounds admission; ``workers`` fans the coalesced
    ``run_batch`` out over threads.  ``degrade_safety`` scales the
    predicted full-execution cost when deciding whether a deadline
    forces degradation (> 1 degrades borderline requests rather than
    gambling).  ``cache_size=0`` disables the result cache.
    """

    max_queue: int = 256
    max_batch: int = 32
    batch_window: float = 0.002
    workers: int = 4
    strategies: str = "all"
    integrator: ProbabilityIntegrator | None = None
    cache_size: int = 1024
    degrade: bool = True
    degrade_safety: float = 2.0
    cost_prior: float = 0.05
    obs: Observability | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ServiceError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.max_batch < 1:
            raise ServiceError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.batch_window < 0:
            raise ServiceError(
                f"batch_window must be >= 0 seconds, got {self.batch_window}"
            )
        if self.workers < 1:
            raise ServiceError(f"workers must be >= 1, got {self.workers}")
        if self.cache_size < 0:
            raise ServiceError(
                f"cache_size must be >= 0, got {self.cache_size}"
            )
        if self.degrade_safety < 1.0:
            raise ServiceError(
                f"degrade_safety must be >= 1, got {self.degrade_safety}"
            )


@dataclass(frozen=True)
class ServiceSnapshot:
    """A structured, point-in-time view of one service's internal state.

    :meth:`QueryService.snapshot` returns this instead of making callers
    scrape the Prometheus exposition: load harnesses, dashboards and
    tests read queue depth, in-flight count, cache hit rate and the
    shed/coalesced counters as plain typed fields.  All counters are
    cumulative since service start; ``queue_depth``/``in_flight``/
    ``cache_entries`` are instantaneous.
    """

    #: Requests currently waiting in the admission queue.
    queue_depth: int
    #: Configured admission bound (``ServiceConfig.max_queue``).
    queue_capacity: int
    #: Submitted requests without a terminal response yet (queued or
    #: mid-execution).
    in_flight: int
    submitted: int
    #: Full-fidelity engine executions (post-coalescing leaders).
    executed: int
    ok: int
    degraded: int
    overloaded: int
    deadline_exceeded: int
    failed: int
    cache_hits: int
    cache_misses: int
    #: Entries resident in the result cache (0 when caching is off).
    cache_entries: int
    #: hits / (hits + misses), 0.0 before any lookup.
    cache_hit_rate: float
    #: In-flight duplicates coalesced into another request's execution.
    deduplicated: int
    batches: int
    coalesced_batches: int
    max_batch_size: int

    def to_dict(self) -> dict:
        """A JSON-serializable dict (the ``repro load`` report rows)."""
        return asdict(self)


class _Pending:
    """One queued request with its future and submission timestamp."""

    __slots__ = ("request", "future", "enqueued_at")

    def __init__(self, request: PRQRequest, future: Future, enqueued_at: float):
        self.request = request
        self.future = future
        self.enqueued_at = enqueued_at

    @property
    def priority(self) -> int:
        return self.request.priority

    def remaining(self, now: float) -> float:
        """Seconds of deadline budget left (+inf without a deadline)."""
        if self.request.deadline is None:
            return float("inf")
        return self.request.deadline - (now - self.enqueued_at)


class QueryService:
    """A resident, thread-safe PRQ service over one spatial database.

    Construct directly or via :meth:`SpatialDatabase.serve`; the
    scheduler thread starts immediately and runs until :meth:`close`
    (also a context manager).  :meth:`submit` returns a
    :class:`concurrent.futures.Future` resolving to a
    :class:`PRQResponse`; :meth:`query` is the blocking shorthand.
    """

    def __init__(self, database, config: ServiceConfig | None = None, **knobs):
        # ``clock`` is injectable for tests: every deadline/degradation
        # decision and every latency figure reads it instead of the wall
        # clock, so deadline behaviour can be driven deterministically.
        # It rides alongside either a ServiceConfig or the plain knobs,
        # as do the two load-harness knobs: ``manual=True`` skips the
        # scheduler thread so a single-threaded driver drains via
        # :meth:`pump`, and ``cost_model`` replaces wall-clock execution
        # cost with a deterministic model (see ``docs/load.md``) —
        # advancing an advanceable clock by the modelled service time so
        # virtual-time runs are bit-reproducible.
        clock = knobs.pop("clock", None)
        self._clock = clock if clock is not None else time.monotonic
        self._manual = bool(knobs.pop("manual", False))
        self._cost_model = knobs.pop("cost_model", None)
        if config is not None and knobs:
            raise ServiceError("pass either a ServiceConfig or knobs, not both")
        self.config = config or ServiceConfig(**knobs)
        self.database = database
        integrator = self.config.integrator or CascadeIntegrator()
        self._obs = self.config.obs
        self.engine = database.engine(
            strategies=self.config.strategies,
            integrator=integrator,
            obs=self._obs,
        )
        self._queue = AdmissionQueue(self.config.max_queue, clock=self._clock)
        self._cache = (
            ResultCache(self.config.cache_size)
            if self.config.cache_size > 0
            else None
        )
        self._cost = CostTracker(prior=self.config.cost_prior)
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {
            "submitted": 0,
            "executed": 0,
            "ok": 0,
            "degraded": 0,
            "overloaded": 0,
            "deadline_exceeded": 0,
            "failed": 0,
            "cache_hits": 0,
            "deduplicated": 0,
            "batches": 0,
            "coalesced_batches": 0,
            "max_batch_size": 0,
        }
        self._published: dict[str, int] = {}
        # Standing queries: the subscription manager shares the engine
        # (and clock/obs) but answers synchronously on the caller's
        # thread, bypassing the micro-batch queue.  Constructed before
        # the scheduler thread starts so its metrics registration never
        # races the registry (which is not locked).
        self.monitor = SubscriptionManager(
            database,
            self.engine,
            degrade=self.config.degrade,
            degrade_safety=self.config.degrade_safety,
            obs=self._obs,
            clock=self._clock,
        )
        self._closing = threading.Event()
        self._scheduler: threading.Thread | None = None
        if not self._manual:
            self._scheduler = threading.Thread(
                target=self._loop, name="repro-serve-scheduler", daemon=True
            )
            self._scheduler.start()

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------

    def submit(self, request: PRQRequest) -> "Future[PRQResponse]":
        """Enqueue one request; never blocks on load.

        Returns a future resolving to the request's :class:`PRQResponse`.
        Cache hits resolve immediately; a full queue resolves immediately
        with an ``overloaded`` response (carrying
        :class:`~repro.errors.OverloadedError`) instead of blocking or
        raising.  Only misuse raises: submitting to a closed service is
        a :class:`~repro.errors.ServiceClosedError`, and a wrong-
        dimension request a :class:`~repro.errors.QueryError`.
        """
        if self._closing.is_set():
            raise ServiceClosedError("service is closed")
        if request.gaussian.dim != self.database.dim:
            raise QueryError(
                f"request dimension {request.gaussian.dim} does not match "
                f"database dimension {self.database.dim}"
            )
        self._count("submitted")
        future: Future = Future()
        if self._cache is not None:
            cached = self._cache.get(request)
            if cached is not None:
                self._count("cache_hits")
                self._count("ok")
                future.set_result(
                    PRQResponse(
                        request_id=request.request_id,
                        status=STATUS_OK,
                        ids=cached,
                        cache_hit=True,
                    )
                )
                return future
        pending = _Pending(request, future, self._clock())
        try:
            admitted = self._queue.offer(pending)
        except ServiceError:
            raise ServiceClosedError("service is closed") from None
        if not admitted:
            self._count("overloaded")
            future.set_result(
                PRQResponse(
                    request_id=request.request_id,
                    status=STATUS_OVERLOADED,
                    error=OverloadedError(self.config.max_queue),
                )
            )
        return future

    def query(
        self, request: PRQRequest, *, timeout: float | None = None
    ) -> PRQResponse:
        """Blocking shorthand: submit and wait for the response."""
        return self.submit(request).result(timeout=timeout)

    def stats(self) -> dict[str, int]:
        """A snapshot of the service counters (see ``docs/serving.md``)."""
        with self._lock:
            snapshot = dict(self._counters)
        snapshot["queue_depth"] = len(self._queue)
        if self._cache is not None:
            info = self._cache.info()
            snapshot["cache_entries"] = info["currsize"]
            snapshot["cache_misses"] = info["misses"]
        return snapshot

    def snapshot(self) -> ServiceSnapshot:
        """Structured service state for harnesses and dashboards.

        The typed sibling of :meth:`stats`: queue depth, in-flight count,
        cache hit rate and the shed/coalesced counters as one frozen
        :class:`ServiceSnapshot`, so callers never scrape the Prometheus
        text exposition for state they can read directly.
        """
        with self._lock:
            c = dict(self._counters)
        cache_info = self._cache.info() if self._cache is not None else None
        hits = c["cache_hits"]
        misses = cache_info["misses"] if cache_info is not None else 0
        lookups = hits + misses
        resolved = (
            c["ok"]
            + c["degraded"]
            + c["overloaded"]
            + c["deadline_exceeded"]
            + c["failed"]
        )
        return ServiceSnapshot(
            queue_depth=len(self._queue),
            queue_capacity=self.config.max_queue,
            in_flight=max(c["submitted"] - resolved, 0),
            submitted=c["submitted"],
            executed=c["executed"],
            ok=c["ok"],
            degraded=c["degraded"],
            overloaded=c["overloaded"],
            deadline_exceeded=c["deadline_exceeded"],
            failed=c["failed"],
            cache_hits=hits,
            cache_misses=misses,
            cache_entries=(
                cache_info["currsize"] if cache_info is not None else 0
            ),
            cache_hit_rate=hits / lookups if lookups else 0.0,
            deduplicated=c["deduplicated"],
            batches=c["batches"],
            coalesced_batches=c["coalesced_batches"],
            max_batch_size=c["max_batch_size"],
        )

    @property
    def clock(self):
        """The service's time source (injected, or ``time.monotonic``)."""
        return self._clock

    @property
    def manual(self) -> bool:
        """True when the service has no scheduler thread (``manual=True``)."""
        return self._manual

    def pump(self) -> int:
        """Drain and process one micro-batch synchronously (manual mode).

        Only meaningful on a service built with ``manual=True`` (no
        scheduler thread): the caller owns the batch-window policy — it
        decides *when* a drain is due on its own (possibly virtual)
        timeline and then calls ``pump`` to execute up to ``max_batch``
        queued requests on the calling thread.  Returns the number of
        requests drained (0 when the queue was empty).
        """
        if not self._manual:
            raise ServiceError(
                "pump() requires a manual-scheduling service "
                "(QueryService(..., manual=True))"
            )
        batch = self._queue.drain(self.config.max_batch)
        if not batch:
            return 0
        try:
            self._process(batch)
        except BaseException as exc:  # pragma: no cover - last resort
            self._fail_batch(batch, exc)
        return len(batch)

    def close(self, *, timeout: float = 30.0) -> None:
        """Stop accepting requests, drain the queue, join the scheduler.

        Every request admitted before ``close`` still gets its response.
        Idempotent; also invoked by the context-manager exit.  On a
        manual-scheduling service there is no scheduler thread to join;
        the remaining queue is pumped dry on the calling thread instead.
        """
        if self._manual:
            already_closed = self._closing.is_set()
            self._closing.set()
            if not already_closed:
                while self.pump():
                    pass
                self._queue.close()
                self._flush_metrics()
            return
        if self._closing.is_set():
            self._scheduler.join(timeout=timeout)
            return
        self._closing.set()
        self._scheduler.join(timeout=timeout)
        if self._scheduler.is_alive():  # pragma: no cover - defensive
            raise ServiceError("scheduler failed to drain within timeout")

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] += amount

    def _loop(self) -> None:
        poll = max(self.config.batch_window, 0.01)
        while True:
            batch = self._queue.next_batch(
                max_batch=self.config.max_batch,
                window=self.config.batch_window,
                poll=poll,
            )
            if batch:
                try:
                    self._process(batch)
                except BaseException as exc:  # pragma: no cover - last resort
                    self._fail_batch(batch, exc)
                continue
            if self._closing.is_set() and len(self._queue) == 0:
                self._queue.close()
                self._flush_metrics()
                break

    def _fail_batch(self, batch: list[_Pending], exc: BaseException) -> None:
        """Resolve a batch whose processing itself blew up (never hangs)."""
        error = (
            exc
            if isinstance(exc, ServiceError)
            else ServiceError(f"scheduler failure: {type(exc).__name__}: {exc}")
        )
        for pending in batch:
            if not pending.future.done():
                self._count("failed")
                pending.future.set_result(
                    PRQResponse(
                        request_id=pending.request.request_id,
                        status=STATUS_FAILED,
                        error=error,
                    )
                )

    def _process(self, batch: list[_Pending]) -> None:
        obs = self._obs
        now = self._clock()
        depth = len(batch) + len(self._queue)
        expired: list[_Pending] = []
        degrade: list[_Pending] = []
        full: list[_Pending] = []
        for pending in batch:
            remaining = pending.remaining(now)
            if remaining <= 0:
                expired.append(pending)
            elif (
                self.config.degrade
                # Sandwich-bound degradation only exists for exact-target
                # PRQs; kinded queries always run the full pipeline.
                and query_kind(pending.request.query) == "prq"
                and self._cost.would_exceed(
                    remaining, safety=self.config.degrade_safety
                )
            ):
                degrade.append(pending)
            else:
                full.append(pending)
        span = (
            obs.span(
                "serve:batch",
                size=len(batch),
                full=len(full),
                degraded=len(degrade),
                expired=len(expired),
            )
            if obs is not None
            else None
        )
        if span is not None:
            span.__enter__()
        try:
            for pending in expired:
                self._resolve_expired(pending, now)
            for pending in degrade:
                self._resolve_degraded(pending)
            if full:
                self._run_full(full)
        finally:
            if span is not None:
                span.__exit__(None, None, None)
        self._count("batches")
        if len(full) > 1:
            self._count("coalesced_batches")
        with self._lock:
            self._counters["max_batch_size"] = max(
                self._counters["max_batch_size"], len(full)
            )
        self._record_metrics(batch, depth, len(full))

    def _resolve_expired(self, pending: _Pending, now: float) -> None:
        waited = now - pending.enqueued_at
        self._count("deadline_exceeded")
        pending.future.set_result(
            PRQResponse(
                request_id=pending.request.request_id,
                status=STATUS_DEADLINE_EXCEEDED,
                error=DeadlineExceededError(
                    pending.request.deadline or 0.0, waited
                ),
                queued_seconds=waited,
                service_seconds=self._clock() - pending.enqueued_at,
            )
        )

    def _advance_clock(self, seconds: float) -> None:
        """Move an advanceable (virtual) clock by modelled service time.

        A real ``time.monotonic`` clock has no ``advance`` — the call is
        then a no-op and wall time keeps flowing on its own.
        """
        advance = getattr(self._clock, "advance", None)
        if advance is not None and seconds > 0:
            advance(seconds)

    def _resolve_degraded(self, pending: _Pending) -> None:
        started = self._clock()
        try:
            ids, bounds, stats = degraded_execute(
                self.engine, pending.request.query
            )
        except Exception as exc:
            self._resolve_failed(pending, exc, started)
            return
        if self._cost_model is not None:
            self._advance_clock(
                self._cost_model.degraded_seconds(pending.request)
            )
        self._count("degraded")
        if self._obs is not None:
            self._obs.record_query(stats)
        pending.future.set_result(
            PRQResponse(
                request_id=pending.request.request_id,
                status=STATUS_DEGRADED,
                ids=ids,
                degraded=True,
                bounds=bounds,
                batch_size=1,
                queued_seconds=started - pending.enqueued_at,
                service_seconds=self._clock() - pending.enqueued_at,
                stats=stats,
            )
        )

    def _resolve_failed(
        self, pending: _Pending, exc: Exception, started: float
    ) -> None:
        error = (
            exc
            if isinstance(exc, ServiceError)
            else QueryError(f"execution failed: {type(exc).__name__}: {exc}")
        )
        self._count("failed")
        pending.future.set_result(
            PRQResponse(
                request_id=pending.request.request_id,
                status=STATUS_FAILED,
                error=error,
                queued_seconds=started - pending.enqueued_at,
                service_seconds=self._clock() - pending.enqueued_at,
            )
        )

    def _run_full(self, full: list[_Pending]) -> None:
        """One coalesced ``run_batch`` over every full-fidelity request.

        Bit-identical in-flight duplicates (same parameter fingerprint)
        are coalesced into a single execution whose result fans out to
        every copy — the thundering-herd half of the caching story, and
        on a single core the main micro-batching throughput win.  Sound
        because a response is a pure function of the request fingerprint
        (deterministic integrators trivially; sampling integrators via
        the fingerprint-derived seed).
        """
        started = self._clock()
        groups: dict[bytes, list[_Pending]] = {}
        for pending in full:
            groups.setdefault(pending.request.fingerprint, []).append(pending)
        leaders = [copies[0] for copies in groups.values()]
        self._count("deduplicated", len(full) - len(leaders))
        queries = [pending.request.query for pending in leaders]
        by_query = {id(q): p.request for q, p in zip(queries, leaders)}

        def factory(query, _seed):
            request = by_query[id(query)]
            return self.engine.integrator.fork(request.seed_sequence())

        batch = self.engine.run_batch(
            queries,
            workers=min(self.config.workers, len(queries)),
            integrator_factory=factory,
            return_errors=True,
        )
        if self._cost_model is not None:
            # Deterministic virtual accounting: the batch costs what the
            # model says, not what this machine's wall clock measured.
            self._advance_clock(
                self._cost_model.batch_seconds(
                    [self._cost_model.query_seconds(p.request) for p in leaders]
                )
            )
        finished = self._clock()
        self._count("executed", len(leaders))
        per_query = (finished - started) / len(leaders)
        for leader, result in zip(leaders, batch.results):
            for pending in groups[leader.request.fingerprint]:
                self._resolve_executed(pending, result, started, len(full))
            if not result.failed:
                if self._cost_model is not None:
                    self._cost.observe(
                        self._cost_model.query_seconds(leader.request)
                    )
                else:
                    self._cost.observe(
                        max(result.stats.total_seconds, per_query)
                    )

    def _resolve_executed(
        self,
        pending: _Pending,
        result: QueryResult,
        started: float,
        batch_size: int,
    ) -> None:
        if result.failed:
            self._count("failed")
            pending.future.set_result(
                PRQResponse(
                    request_id=pending.request.request_id,
                    status=STATUS_FAILED,
                    error=result.error,
                    batch_size=batch_size,
                    queued_seconds=started - pending.enqueued_at,
                    service_seconds=self._clock() - pending.enqueued_at,
                    stats=result.stats,
                )
            )
            return
        self._count("ok")
        if self._cache is not None:
            self._cache.put(pending.request, result.ids)
        pending.future.set_result(
            PRQResponse(
                request_id=pending.request.request_id,
                status=STATUS_OK,
                ids=result.ids,
                batch_size=batch_size,
                queued_seconds=started - pending.enqueued_at,
                service_seconds=self._clock() - pending.enqueued_at,
                stats=result.stats,
            )
        )

    # ------------------------------------------------------------------
    # Telemetry (scheduler thread only — the registry is not locked)
    # ------------------------------------------------------------------

    def _record_metrics(
        self, batch: list[_Pending], depth: int, full_size: int
    ) -> None:
        obs = self._obs
        if obs is None or obs.metrics is None:
            return
        registry = obs.metrics
        now = self._clock()
        registry.histogram(
            "repro_serve_queue_depth",
            "Requests queued (including the drained batch) at drain time.",
            buckets=QUEUE_BUCKETS,
        ).observe(depth)
        registry.histogram(
            "repro_serve_batch_size",
            "Coalesced micro-batch sizes (full-fidelity requests per drain).",
            buckets=QUEUE_BUCKETS,
        ).observe(full_size)
        wait_hist = registry.histogram(
            "repro_serve_wait_seconds",
            "Per-request queue wait before execution began.",
            buckets=TIME_BUCKETS,
        )
        for pending in batch:
            wait_hist.observe(max(now - pending.enqueued_at, 0.0))
        self._publish_counters(registry)
        if self.engine.planner is not None:
            self.engine.planner.publish_metrics(obs)

    def _flush_metrics(self) -> None:
        """Publish counter increments that landed after the last drain.

        Cache hits and overload rejections are counted at submit time, so
        without a final flush any increment between the last drain and
        ``close`` would never reach the registry.
        """
        obs = self._obs
        if obs is None or obs.metrics is None:
            return
        self._publish_counters(obs.metrics)

    def _publish_counters(self, registry) -> None:
        requests = registry.counter(
            "repro_serve_requests_total",
            "Service responses by terminal status.",
            labelnames=("status",),
        )
        cache_outcomes = registry.counter(
            "repro_serve_cache_requests_total",
            "Result-cache lookups by outcome.",
            labelnames=("outcome",),
        )
        with self._lock:
            snapshot = dict(self._counters)
        cache_info = self._cache.info() if self._cache is not None else None
        deltas = {
            ("status", "ok"): snapshot["ok"],
            ("status", "degraded"): snapshot["degraded"],
            ("status", "overloaded"): snapshot["overloaded"],
            ("status", "deadline_exceeded"): snapshot["deadline_exceeded"],
            ("status", "failed"): snapshot["failed"],
        }
        if cache_info is not None:
            deltas[("outcome", "hit")] = cache_info["hits"]
            deltas[("outcome", "miss")] = cache_info["misses"]
        for (label, value), total in deltas.items():
            key = f"{label}:{value}"
            delta = total - self._published.get(key, 0)
            if delta > 0:
                target = requests if label == "status" else cache_outcomes
                target.inc(delta, **{label: value})
                self._published[key] = total
        dedup_delta = snapshot["deduplicated"] - self._published.get(
            "deduplicated", 0
        )
        if dedup_delta > 0:
            registry.counter(
                "repro_serve_deduplicated_total",
                "In-flight duplicate requests coalesced into one execution.",
            ).inc(dedup_delta)
            self._published["deduplicated"] = snapshot["deduplicated"]
        registry.gauge(
            "repro_serve_queue_capacity", "Configured admission-queue bound."
        ).set(self.config.max_queue)
        if self._cache is not None:
            self._cache.publish_metrics(registry)

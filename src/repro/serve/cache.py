"""Keyed result LRU cache for the query service.

Keys reuse the planner's quantization scheme
(:func:`repro.core.planner.quantized_shape_key`: log-grid bins over the
Σ-spectrum, δ and θ) to *group* entries by workload shape, but every key
additionally carries the request's exact SHA-256 fingerprint (center, Σ,
δ, θ) — a hit therefore only ever returns the result of a bit-identical
request, never of a merely similar one, so cached responses are exactly
what re-execution would produce.  This is the serving-time reuse the
pre-approximation literature argues for (per-(Σ, δ, θ) structure shared
across requests), applied at the level of whole results.

Thread-safe; hit/miss counters are published to the metrics registry as
``repro_serve_cache_requests_total{outcome=...}`` plus entry/capacity
gauges (see ``docs/serving.md``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.core.planner import quantized_shape_key
from repro.errors import ServiceError
from repro.serve.request import PRQRequest

__all__ = ["ResultCache"]


class ResultCache:
    """LRU map from exact request identity to result id tuples.

    Parameters
    ----------
    max_entries:
        Capacity; least-recently-used entries are evicted beyond it.
    bins_per_efold:
        Resolution of the quantized shape prefix of each key (the same
        knob the planner's plan cache uses).
    """

    def __init__(self, max_entries: int = 1024, *, bins_per_efold: int = 4):
        if max_entries < 1:
            raise ServiceError(f"max_entries must be >= 1, got {max_entries}")
        if bins_per_efold < 1:
            raise ServiceError(
                f"bins_per_efold must be >= 1, got {bins_per_efold}"
            )
        self.max_entries = int(max_entries)
        self._bins = int(bins_per_efold)
        self._entries: OrderedDict[tuple, tuple[int, ...]] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def _key(self, request: PRQRequest) -> tuple:
        return (
            quantized_shape_key(request.query, self._bins),
            request.fingerprint,
        )

    def get(self, request: PRQRequest) -> tuple[int, ...] | None:
        """The cached result ids for an identical past request, or None."""
        key = self._key(request)
        with self._lock:
            ids = self._entries.get(key)
            if ids is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return ids

    def put(self, request: PRQRequest, ids: tuple[int, ...]) -> None:
        """Remember a *non-degraded* result for ``request``."""
        key = self._key(request)
        with self._lock:
            self._entries[key] = tuple(ids)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def info(self) -> dict[str, int]:
        """Hit/miss counters plus current and maximum size."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "currsize": len(self._entries),
                "maxsize": self.max_entries,
            }

    def distinct_shapes(self) -> int:
        """How many quantized workload shapes the entries span."""
        with self._lock:
            return len({key[0] for key in self._entries})

    def publish_metrics(self, registry) -> None:
        """Snapshot cache state into a metrics registry (gauges)."""
        if registry is None:
            return
        info = self.info()
        registry.gauge(
            "repro_serve_cache_entries",
            "Results currently resident in the serve cache.",
        ).set(info["currsize"])
        registry.gauge(
            "repro_serve_cache_size",
            "Configured serve result-cache capacity.",
        ).set(info["maxsize"])

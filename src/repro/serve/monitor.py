"""Standing subscriptions: safe-region monitoring through the service.

A *subscription* is one PRQ(q, δ, θ) that stays registered while its
query object moves.  Instead of re-running the pipeline per location
update (the legacy ``repro.core.monitor`` loop), the
:class:`SubscriptionManager` anchors each subscription once — full
answer plus a :class:`~repro.core.saferegion.SafeRegion` — and then
answers every update by classifying it against the region:

- **survived** — the shift is covered by every cached row's slack; the
  anchor answer is returned unchanged.  O(1): one d×d mat-vec and a
  binary search, no index, no integration.
- **reintegrated** — only the slack-exhausted border rows run Phase 2/3
  again (fresh strategy clones over the cached points); every other
  decision is proven to stand.
- **replanned** — the covariance changed, the translated Phase-1
  rectangle escaped the cached candidate superset, or too many slacks
  broke: the subscription re-anchors with a full engine run (scattered
  across shards when the engine is a
  :class:`~repro.shard.engine.ShardedEngine`).

Every non-degraded answer is **bit-identical** to a cold full
evaluation of the same query at the updated location — the contract
``docs/monitoring.md`` proves and ``tests/test_monitor_subscriptions.py``
checks against random trajectories.  The guarantee needs two gates,
enforced at :meth:`SubscriptionManager.subscribe`: the engine's
integrator must be *composition independent* (per-candidate decisions
cannot depend on how candidates are grouped — true of the default
cascade) and the query must be an exact-target PRQ (kinded queries ride
the regular request path).

Deadline pressure degrades *soundly*: when an update carries a
``deadline`` smaller than the predicted reintegration cost, the manager
answers with the proven-certain ids plus one ``(id, lower, upper)``
χ²-sandwich interval per still-open row, flags the response
``stale=True`` and leaves the subscription's committed answer untouched
(a later unconstrained update, or a replan, re-converges).  Structural
replans always execute fully — a broken region cannot answer soundly at
any fidelity.

Telemetry (when the service has an :class:`~repro.obs.Observability`):
``repro_monitor_*`` metrics and one ``monitor:update`` span per update,
as tabulated in ``docs/monitoring.md``.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.kinds import query_kind
from repro.core.query import ProbabilisticRangeQuery
from repro.core.saferegion import (
    DECISION_REINTEGRATE,
    DECISION_REPLAN,
    DECISION_SURVIVED,
    RegionDecision,
    SafeRegion,
)
from repro.core.stages import FilterStage, IntegrateStage, SearchStage, StageContext
from repro.core.stats import QueryStats
from repro.errors import QueryError, ReproError, ServiceError
from repro.gaussian.distribution import Gaussian
from repro.gaussian.quadform import chi2_sandwich_bounds_block
from repro.serve.degrade import CostTracker
from repro.serve.request import STATUS_DEGRADED, STATUS_FAILED, STATUS_OK

__all__ = [
    "SubscriptionManager",
    "MonitorSnapshot",
    "MonitorRequest",
    "MonitorResponse",
    "REQUEST_SUBSCRIBE",
    "REQUEST_UPDATE",
    "REQUEST_UNSUBSCRIBE",
    "REQUEST_NOTIFY",
    "REQUEST_TYPES",
    "OUTCOME_SURVIVED",
    "OUTCOME_REINTEGRATED",
    "OUTCOME_REPLANNED",
    "OUTCOME_DEGRADED",
]

#: Register a standing query; the response carries its first full answer.
REQUEST_SUBSCRIBE = "subscribe"
#: Move (and optionally re-shape) a subscription's query object.
REQUEST_UPDATE = "update"
#: Retire a subscription and drop its safe region.
REQUEST_UNSUBSCRIBE = "unsubscribe"
#: Read a subscription's committed answer without touching its state.
REQUEST_NOTIFY = "notify"
#: Every request type the monitoring surface accepts, in contract order.
REQUEST_TYPES = (
    REQUEST_SUBSCRIBE,
    REQUEST_UPDATE,
    REQUEST_UNSUBSCRIBE,
    REQUEST_NOTIFY,
)

#: The cached answer survived as-is (O(1), no integration).
OUTCOME_SURVIVED = DECISION_SURVIVED
#: Border rows were re-decided; the rest of the answer was proven stable.
OUTCOME_REINTEGRATED = "reintegrated"
#: The subscription re-anchored with a full engine run.
OUTCOME_REPLANNED = "replanned"
#: The deadline bit: certain ids plus sound intervals, state untouched.
OUTCOME_DEGRADED = "degraded"


@dataclass(frozen=True)
class MonitorRequest:
    """One monitoring request line (see ``docs/monitoring.md``).

    ``type`` selects the verb; which other fields are required depends on
    it and is validated eagerly: ``subscribe`` needs ``gaussian``,
    ``delta`` and ``theta``; ``update`` needs ``subscription_id`` and
    ``mean`` (``sigma`` only when the covariance changed, ``deadline``
    optionally bounds this update's seconds); ``unsubscribe``/``notify``
    need ``subscription_id`` alone.
    """

    type: str
    subscription_id: int | str | None = None
    gaussian: Gaussian | None = None
    delta: float | None = None
    theta: float | None = None
    mean: np.ndarray | None = None
    sigma: np.ndarray | None = None
    deadline: float | None = None
    request_id: int | str | None = None

    def __post_init__(self) -> None:
        if self.type not in REQUEST_TYPES:
            raise ServiceError(
                f"unknown monitor request type {self.type!r}; "
                f"expected one of {REQUEST_TYPES}"
            )
        if self.type == REQUEST_SUBSCRIBE:
            if self.gaussian is None or self.delta is None or self.theta is None:
                raise ServiceError(
                    "subscribe requires gaussian, delta and theta"
                )
            # Validate δ/θ exactly as a query would, eagerly.
            ProbabilisticRangeQuery(self.gaussian, self.delta, self.theta)
        elif self.subscription_id is None:
            raise ServiceError(f"{self.type} requires subscription_id")
        if self.type == REQUEST_UPDATE and self.mean is None:
            raise ServiceError("update requires mean")
        if self.deadline is not None and not self.deadline >= 0:
            raise ServiceError(
                f"deadline must be >= 0 seconds, got {self.deadline}"
            )

    @classmethod
    def subscribe(
        cls,
        gaussian: Gaussian,
        delta: float,
        theta: float,
        *,
        subscription_id: int | str | None = None,
        request_id: int | str | None = None,
    ) -> "MonitorRequest":
        return cls(
            REQUEST_SUBSCRIBE,
            subscription_id=subscription_id,
            gaussian=gaussian,
            delta=delta,
            theta=theta,
            request_id=request_id,
        )

    @classmethod
    def update(
        cls,
        subscription_id: int | str,
        mean,
        sigma=None,
        *,
        deadline: float | None = None,
        request_id: int | str | None = None,
    ) -> "MonitorRequest":
        return cls(
            REQUEST_UPDATE,
            subscription_id=subscription_id,
            mean=np.asarray(mean, dtype=float),
            sigma=None if sigma is None else np.asarray(sigma, dtype=float),
            deadline=deadline,
            request_id=request_id,
        )

    @classmethod
    def unsubscribe(
        cls,
        subscription_id: int | str,
        *,
        request_id: int | str | None = None,
    ) -> "MonitorRequest":
        return cls(
            REQUEST_UNSUBSCRIBE,
            subscription_id=subscription_id,
            request_id=request_id,
        )

    @classmethod
    def notify(
        cls,
        subscription_id: int | str,
        *,
        request_id: int | str | None = None,
    ) -> "MonitorRequest":
        return cls(
            REQUEST_NOTIFY,
            subscription_id=subscription_id,
            request_id=request_id,
        )


@dataclass(frozen=True)
class MonitorResponse:
    """The manager's answer to one :class:`MonitorRequest`.

    ``status`` reuses the service vocabulary (``ok``/``degraded``/
    ``failed``); ``outcome`` is one of the ``OUTCOME_*`` constants for
    updates (empty for the other verbs).  ``ids`` is the full exact
    answer except on degraded responses, where it holds only *proven*
    accepts and ``bounds`` encloses every still-open candidate.
    ``added``/``removed`` are the delta against the subscription's
    previously committed answer (empty on degraded responses, which
    commit nothing).
    """

    request_id: int | str | None
    type: str
    status: str
    subscription_id: int | str | None = None
    outcome: str = ""
    ids: tuple[int, ...] = ()
    added: tuple[int, ...] = ()
    removed: tuple[int, ...] = ()
    #: Sound ``(object_id, lower, upper)`` enclosures for candidates a
    #: degraded update could not decide against θ.
    bounds: tuple[tuple[int, float, float], ...] = ()
    #: Cached rows re-decided by this update (0 for survived/notify).
    rechecked: int = 0
    #: Mahalanobis length of the update's mean shift from the anchor.
    shift: float = 0.0
    #: True when this answer (or, for ``notify``, the committed answer it
    #: echoes) has been overtaken by a degraded update.
    stale: bool = False
    error: ReproError | None = None
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the request produced a usable answer."""
        return self.status in (STATUS_OK, STATUS_DEGRADED)

    def to_dict(self) -> dict:
        """A JSON-serializable digest (the ``repro serve`` output rows)."""
        payload: dict = {
            "id": self.request_id,
            "type": self.type,
            "status": self.status,
            "subscription_id": self.subscription_id,
            "ids": list(self.ids),
            "stale": self.stale,
            "service_ms": round(self.seconds * 1e3, 3),
        }
        if self.type == REQUEST_UPDATE:
            payload["outcome"] = self.outcome
            payload["added"] = list(self.added)
            payload["removed"] = list(self.removed)
            payload["rechecked"] = self.rechecked
            payload["shift"] = round(self.shift, 6)
        if self.bounds:
            payload["bounds"] = [
                [obj_id, lower, upper] for obj_id, lower, upper in self.bounds
            ]
        if self.error is not None:
            payload["error"] = str(self.error)
        return payload


@dataclass(frozen=True)
class MonitorSnapshot:
    """Structured monitoring state, mirroring `QueryService.snapshot`.

    The typed sibling of :meth:`SubscriptionManager.stats`: cumulative
    verb/outcome counters plus the instantaneous subscription count, so
    harnesses read monitoring pressure (update-storm survival mix,
    degraded share) without scraping the metrics exposition.
    """

    #: Subscriptions currently registered.
    active_subscriptions: int
    subscribed: int
    unsubscribed: int
    updates: int
    survived: int
    reintegrated: int
    replanned: int
    degraded: int
    notified: int
    failed: int
    #: Cached candidate rows re-decided across all updates.
    rechecked_candidates: int
    #: survived / updates, 0.0 before any update.
    survival_rate: float

    def to_dict(self) -> dict:
        """A JSON-serializable dict (the ``repro load`` report rows)."""
        return asdict(self)


@dataclass
class _Subscription:
    """Mutable per-subscription state (guarded by the manager lock)."""

    key: int | str
    query: ProbabilisticRangeQuery
    region: SafeRegion
    #: The last committed (full-fidelity) answer.
    reported: tuple[int, ...]
    #: True when a degraded update has been seen since ``reported``.
    stale: bool = False
    updates: int = 0
    extra: dict = field(default_factory=dict)


def _anchor_seed(query: ProbabilisticRangeQuery) -> np.random.SeedSequence:
    """The fingerprint-derived seed stream for one anchor's executions.

    Mirrors :meth:`repro.serve.request.PRQRequest.seed_sequence`: a pure
    function of (mean, Σ, δ, θ), so every execution a subscription ever
    performs — anchor, replan, reintegration — forks its integrator from
    the same entry state a direct service request for that anchor would.
    """
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(query.gaussian.mean, float).tobytes())
    digest.update(np.ascontiguousarray(query.gaussian.sigma, float).tobytes())
    digest.update(np.float64(query.delta).tobytes())
    digest.update(np.float64(query.theta).tobytes())
    return np.random.SeedSequence(int.from_bytes(digest.digest()[:16], "big"))


class SubscriptionManager:
    """Safe-region monitoring over one engine (plain or sharded).

    Thread-safe and synchronous: every verb runs on the calling thread
    under one lock (updates are designed to be cheap — that is the whole
    point), bypassing the service's micro-batch queue.  Construct
    directly or reach the one a :class:`~repro.serve.QueryService` owns
    as ``service.monitor``.

    ``margin`` scales each cached candidate superset (0.5 = 50 % wider
    per side); ``replan_fraction``/``replan_min`` bound how many cached
    rows an update may re-decide in place before re-anchoring is
    considered cheaper; ``degrade``/``degrade_safety`` control
    deadline-aware degradation exactly as on the request path.
    """

    def __init__(
        self,
        database,
        engine,
        *,
        margin: float = 0.5,
        replan_fraction: float = 0.35,
        replan_min: int = 8,
        degrade: bool = True,
        degrade_safety: float = 2.0,
        cost_prior: float = 0.005,
        obs=None,
        clock=None,
    ):
        if margin < 0:
            raise ServiceError(f"margin must be >= 0, got {margin}")
        if not 0.0 <= replan_fraction <= 1.0:
            raise ServiceError(
                f"replan_fraction must lie in [0, 1], got {replan_fraction}"
            )
        if degrade_safety < 1.0:
            raise ServiceError(
                f"degrade_safety must be >= 1, got {degrade_safety}"
            )
        self.database = database
        self.engine = engine
        self.margin = float(margin)
        self.replan_fraction = float(replan_fraction)
        self.replan_min = int(replan_min)
        self.degrade = bool(degrade)
        self.degrade_safety = float(degrade_safety)
        self._clock = clock if clock is not None else time.monotonic
        self._obs = obs
        self._lock = threading.Lock()
        self._subs: dict[int | str, _Subscription] = {}
        self._auto_key = 0
        self._reintegrate_cost = CostTracker(prior=cost_prior)
        self._counters: dict[str, int] = {
            "subscribed": 0,
            "unsubscribed": 0,
            "updates": 0,
            "survived": 0,
            "reintegrated": 0,
            "replanned": 0,
            "degraded": 0,
            "notified": 0,
            "failed": 0,
            "rechecked_candidates": 0,
        }
        # The registry dict is not locked, so every monitor metric is
        # registered here — before any other thread can race the
        # registration — and only the pre-fetched objects are written
        # later (under the manager lock).
        self._metrics = None
        if obs is not None and getattr(obs, "metrics", None) is not None:
            from repro.obs import COUNT_BUCKETS, TIME_BUCKETS

            registry = obs.metrics
            self._metrics = {
                "updates": registry.counter(
                    "repro_monitor_updates_total",
                    "Subscription updates by outcome.",
                    labelnames=("outcome",),
                ),
                "seconds": registry.histogram(
                    "repro_monitor_update_seconds",
                    "Wall seconds per subscription update.",
                    buckets=TIME_BUCKETS,
                ),
                "rechecked": registry.histogram(
                    "repro_monitor_rechecked_candidates",
                    "Cached rows re-decided per update.",
                    buckets=COUNT_BUCKETS,
                ),
                "subscriptions": registry.gauge(
                    "repro_monitor_subscriptions",
                    "Currently active subscriptions.",
                ),
            }

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------

    def subscribe(
        self,
        gaussian: Gaussian,
        delta: float,
        theta: float,
        *,
        subscription_id: int | str | None = None,
        request_id: int | str | None = None,
    ) -> MonitorResponse:
        """Register a standing PRQ; the response carries its full answer.

        Raises :class:`~repro.errors.ServiceError` on API misuse (an
        integrator without composition independence, a kinded query, a
        duplicate id, a dimension mismatch); execution failures come back
        as ``failed`` responses instead.
        """
        started = self._clock()
        if not self.engine.integrator.composition_independent:
            raise ServiceError(
                "subscriptions require a composition-independent "
                "integrator (the cascade, exact methods, or a "
                "CandidateSeededIntegrator wrap): per-candidate decisions "
                "must not depend on which candidates are rechecked "
                "together"
            )
        if gaussian.dim != self.database.dim:
            raise QueryError(
                f"subscription dimension {gaussian.dim} does not match "
                f"database dimension {self.database.dim}"
            )
        query = ProbabilisticRangeQuery(gaussian, delta, theta)
        if query_kind(query) != "prq":
            raise ServiceError(
                "subscriptions cover exact-target PRQs only; kinded "
                "queries ride the regular request path"
            )
        with self._lock:
            key = subscription_id
            if key is None:
                self._auto_key += 1
                key = self._auto_key
            if key in self._subs:
                raise ServiceError(f"subscription {key!r} already exists")
            try:
                answer, region = self._anchor(query, reuse=None)
            except ReproError as exc:
                self._counters["failed"] += 1
                return MonitorResponse(
                    request_id=request_id,
                    type=REQUEST_SUBSCRIBE,
                    status=STATUS_FAILED,
                    subscription_id=key,
                    error=exc,
                    seconds=self._clock() - started,
                )
            self._subs[key] = _Subscription(
                key=key, query=query, region=region, reported=answer
            )
            self._counters["subscribed"] += 1
            if self._metrics is not None:
                self._metrics["subscriptions"].set(len(self._subs))
        return MonitorResponse(
            request_id=request_id,
            type=REQUEST_SUBSCRIBE,
            status=STATUS_OK,
            subscription_id=key,
            ids=answer,
            added=answer,
            seconds=self._clock() - started,
        )

    def update(
        self,
        subscription_id: int | str,
        mean,
        sigma=None,
        *,
        deadline: float | None = None,
        request_id: int | str | None = None,
    ) -> MonitorResponse:
        """Move a subscription's query object and return the fresh answer.

        The safe region classifies the shift in O(1); the response's
        ``outcome`` says what that cost: ``survived`` (nothing executed),
        ``reintegrated`` (Phase 2/3 over ``rechecked`` cached rows),
        ``replanned`` (full engine run and a new region), or ``degraded``
        (the ``deadline`` bit — proven ids plus sound intervals,
        committed state untouched).
        """
        started = self._clock()
        with self._lock:
            sub = self._subs.get(subscription_id)
            if sub is None:
                self._counters["failed"] += 1
                return MonitorResponse(
                    request_id=request_id,
                    type=REQUEST_UPDATE,
                    status=STATUS_FAILED,
                    subscription_id=subscription_id,
                    error=QueryError(
                        f"unknown subscription {subscription_id!r}"
                    ),
                    seconds=self._clock() - started,
                )
            span = (
                self._obs.span("monitor:update", subscription=str(sub.key))
                if self._obs is not None
                else None
            )
            if span is not None:
                span.__enter__()
            try:
                response = self._update_locked(
                    sub, mean, sigma, deadline, request_id, started
                )
                if span is not None:
                    span.annotate(
                        outcome=response.outcome,
                        rechecked=response.rechecked,
                        shift=response.shift,
                    )
            except ReproError as exc:
                self._counters["failed"] += 1
                response = MonitorResponse(
                    request_id=request_id,
                    type=REQUEST_UPDATE,
                    status=STATUS_FAILED,
                    subscription_id=sub.key,
                    error=exc,
                    seconds=self._clock() - started,
                )
            finally:
                if span is not None:
                    span.__exit__(None, None, None)
            self._counters["updates"] += 1
            if self._metrics is not None and response.outcome:
                self._metrics["updates"].inc(1, outcome=response.outcome)
                self._metrics["seconds"].observe(response.seconds)
                self._metrics["rechecked"].observe(response.rechecked)
        return response

    def unsubscribe(
        self,
        subscription_id: int | str,
        *,
        request_id: int | str | None = None,
    ) -> MonitorResponse:
        """Retire a subscription; its last committed answer is echoed."""
        started = self._clock()
        with self._lock:
            sub = self._subs.pop(subscription_id, None)
            if sub is None:
                self._counters["failed"] += 1
                return MonitorResponse(
                    request_id=request_id,
                    type=REQUEST_UNSUBSCRIBE,
                    status=STATUS_FAILED,
                    subscription_id=subscription_id,
                    error=QueryError(
                        f"unknown subscription {subscription_id!r}"
                    ),
                    seconds=self._clock() - started,
                )
            self._counters["unsubscribed"] += 1
            if self._metrics is not None:
                self._metrics["subscriptions"].set(len(self._subs))
        return MonitorResponse(
            request_id=request_id,
            type=REQUEST_UNSUBSCRIBE,
            status=STATUS_OK,
            subscription_id=subscription_id,
            ids=sub.reported,
            stale=sub.stale,
            seconds=self._clock() - started,
        )

    def notify(
        self,
        subscription_id: int | str,
        *,
        request_id: int | str | None = None,
    ) -> MonitorResponse:
        """Read the committed answer without touching subscription state.

        ``stale=True`` warns that a degraded update has been observed
        since the answer was committed — re-issue the update without a
        deadline to re-converge.
        """
        started = self._clock()
        with self._lock:
            sub = self._subs.get(subscription_id)
            if sub is None:
                self._counters["failed"] += 1
                return MonitorResponse(
                    request_id=request_id,
                    type=REQUEST_NOTIFY,
                    status=STATUS_FAILED,
                    subscription_id=subscription_id,
                    error=QueryError(
                        f"unknown subscription {subscription_id!r}"
                    ),
                    seconds=self._clock() - started,
                )
            self._counters["notified"] += 1
            return MonitorResponse(
                request_id=request_id,
                type=REQUEST_NOTIFY,
                status=STATUS_OK,
                subscription_id=subscription_id,
                ids=sub.reported,
                stale=sub.stale,
                seconds=self._clock() - started,
            )

    def handle(self, request: MonitorRequest) -> MonitorResponse:
        """Dispatch one request line; misuse becomes a ``failed`` response."""
        try:
            if request.type == REQUEST_SUBSCRIBE:
                assert request.gaussian is not None
                return self.subscribe(
                    request.gaussian,
                    float(request.delta),  # type: ignore[arg-type]
                    float(request.theta),  # type: ignore[arg-type]
                    subscription_id=request.subscription_id,
                    request_id=request.request_id,
                )
            assert request.subscription_id is not None
            if request.type == REQUEST_UPDATE:
                return self.update(
                    request.subscription_id,
                    request.mean,
                    request.sigma,
                    deadline=request.deadline,
                    request_id=request.request_id,
                )
            if request.type == REQUEST_UNSUBSCRIBE:
                return self.unsubscribe(
                    request.subscription_id, request_id=request.request_id
                )
            return self.notify(
                request.subscription_id, request_id=request.request_id
            )
        except ReproError as exc:
            with self._lock:
                self._counters["failed"] += 1
            return MonitorResponse(
                request_id=request.request_id,
                type=request.type,
                status=STATUS_FAILED,
                subscription_id=request.subscription_id,
                error=exc,
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Counter snapshot plus the active-subscription count."""
        with self._lock:
            snapshot = dict(self._counters)
            snapshot["active_subscriptions"] = len(self._subs)
        return snapshot

    def snapshot(self) -> MonitorSnapshot:
        """Structured monitoring state (see :class:`MonitorSnapshot`)."""
        with self._lock:
            c = dict(self._counters)
            active = len(self._subs)
        return MonitorSnapshot(
            active_subscriptions=active,
            subscribed=c["subscribed"],
            unsubscribed=c["unsubscribed"],
            updates=c["updates"],
            survived=c["survived"],
            reintegrated=c["reintegrated"],
            replanned=c["replanned"],
            degraded=c["degraded"],
            notified=c["notified"],
            failed=c["failed"],
            rechecked_candidates=c["rechecked_candidates"],
            survival_rate=c["survived"] / c["updates"] if c["updates"] else 0.0,
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._subs)

    def region_of(self, subscription_id: int | str) -> SafeRegion:
        """The subscription's current safe region (for inspection/tests)."""
        with self._lock:
            sub = self._subs.get(subscription_id)
            if sub is None:
                raise QueryError(f"unknown subscription {subscription_id!r}")
            return sub.region

    # ------------------------------------------------------------------
    # Internals (caller holds the lock)
    # ------------------------------------------------------------------

    def _update_locked(
        self, sub, mean, sigma, deadline, request_id, started
    ) -> MonitorResponse:
        mean = np.asarray(mean, dtype=float)
        decision = sub.region.classify(
            mean,
            None if sigma is None else np.asarray(sigma, dtype=float),
            replan_fraction=self.replan_fraction,
            replan_min=self.replan_min,
        )
        if decision.kind == DECISION_REINTEGRATE:
            if (
                self.degrade
                and deadline is not None
                and self._reintegrate_cost.would_exceed(
                    deadline, safety=self.degrade_safety
                )
            ):
                return self._degraded_update(
                    sub, mean, decision, request_id, started
                )
            reintegrated = self._reintegrate(sub, mean, decision)
            if reintegrated is None:
                # The shifted rectangle escaped the cached superset after
                # all (classify's O(d) check uses translation
                # equivariance; the prepared strategies are definitive).
                decision = RegionDecision(
                    DECISION_REPLAN, reason="cache-overrun", shift=decision.shift
                )
            else:
                # Re-anchor at the new position: the answer is exact, the
                # rectangle is already prepared, the candidate cache and
                # the shell radii carry over — only the per-row slacks
                # need recomputing.  This keeps the measured shift
                # per-update instead of cumulative, so slow motion keeps
                # hitting the O(1) survived path.
                answer, query, region = reintegrated
                sub.query = query
                sub.region = region
                self._reintegrate_cost.observe(self._clock() - started)
                return self._commit(
                    sub,
                    answer,
                    OUTCOME_REINTEGRATED,
                    decision,
                    request_id,
                    started,
                )
        if decision.kind == DECISION_REPLAN:
            # Structural breaks always execute fully, deadline or not: a
            # broken region cannot answer soundly at any fidelity.
            new_sigma = (
                sub.query.gaussian.sigma if sigma is None else sigma
            )
            query = ProbabilisticRangeQuery(
                Gaussian(mean, new_sigma), sub.query.delta, sub.query.theta
            )
            answer, region = self._anchor(query, reuse=sub.region)
            sub.query = query
            sub.region = region
            return self._commit(
                sub, answer, OUTCOME_REPLANNED, decision, request_id, started
            )
        # Survived: the anchor answer is provably exact at the new mean.
        return self._commit(
            sub,
            sub.region.answer,
            OUTCOME_SURVIVED,
            decision,
            request_id,
            started,
        )

    def _commit(
        self, sub, answer, outcome, decision, request_id, started
    ) -> MonitorResponse:
        previous = frozenset(sub.reported)
        current = frozenset(answer)
        added = tuple(sorted(current - previous))
        removed = tuple(sorted(previous - current))
        sub.reported = tuple(answer)
        sub.stale = False
        sub.updates += 1
        self._counters[outcome] += 1
        self._counters["rechecked_candidates"] += decision.n_recheck
        return MonitorResponse(
            request_id=request_id,
            type=REQUEST_UPDATE,
            status=STATUS_OK,
            subscription_id=sub.key,
            outcome=outcome,
            ids=tuple(answer),
            added=added,
            removed=removed,
            rechecked=decision.n_recheck,
            shift=decision.shift,
            seconds=self._clock() - started,
        )

    def _degraded_update(
        self, sub, mean, decision, request_id, started
    ) -> MonitorResponse:
        """Sound partial answer under deadline pressure; commits nothing.

        Only reached for *reintegrate* decisions, so Σ is unchanged and
        the translated rectangle fits the cache — the preconditions under
        which the sandwich intervals below enclose the truth.
        """
        query = sub.query
        shifted = Gaussian(mean, query.gaussian.sigma)
        certain = sub.region.certain_accept_ids(decision)
        rows = decision.recheck
        assert rows is not None
        bounds: list[tuple[int, float, float]] = []
        accepted: list[int] = list(certain)
        if rows.size:
            enclosure = chi2_sandwich_bounds_block(
                shifted, sub.region.points[rows], query.delta
            )
            lower, upper = enclosure[:, 0], enclosure[:, 1]
            row_ids = sub.region.ids[rows]
            for obj_id, lo, hi in zip(row_ids, lower, upper):
                if lo >= query.theta:
                    accepted.append(int(obj_id))
                elif hi >= query.theta:
                    bounds.append((int(obj_id), float(lo), float(hi)))
        bounds.sort(key=lambda triple: triple[0])
        sub.stale = True
        self._counters[OUTCOME_DEGRADED] += 1
        self._counters["rechecked_candidates"] += decision.n_recheck
        return MonitorResponse(
            request_id=request_id,
            type=REQUEST_UPDATE,
            status=STATUS_DEGRADED,
            subscription_id=sub.key,
            outcome=OUTCOME_DEGRADED,
            ids=tuple(sorted(accepted)),
            bounds=tuple(bounds),
            rechecked=decision.n_recheck,
            shift=decision.shift,
            stale=True,
            seconds=self._clock() - started,
        )

    def _anchor(
        self, query: ProbabilisticRangeQuery, *, reuse: SafeRegion | None
    ) -> tuple[tuple[int, ...], SafeRegion]:
        """Full answer + fresh safe region for ``query`` (anchor/replan).

        The answer comes from ``engine.run_batch`` — a
        :class:`~repro.shard.engine.ShardedEngine` scatters it across the
        worker processes exactly like any other query.  The Phase-1
        rectangle is prepared on fresh strategy clones so a concurrent
        scheduler batch on the same engine is never perturbed.
        """
        seed = _anchor_seed(query)
        batch = self.engine.run_batch(
            [query],
            workers=1,
            integrator_factory=lambda _q, _s: self.engine.integrator.fork(
                seed
            ),
        )
        answer = batch.results[0].ids
        strategies = [s.clone() for s in self.engine.strategies]
        search = SearchStage(self.engine.index, phase1=self.engine.phase1)
        rect = search.prepare(query, strategies, QueryStats())
        region = SafeRegion.build(
            query,
            answer,
            index=self.database.index,
            point_of=self.database.point,
            anchor_rect=rect,
            margin=self.margin,
            reuse=reuse,
        )
        return answer, region

    def _reintegrate(self, sub, mean, decision):
        """Phases 2/3 over the recheck rows only; ``None`` forces a replan.

        Uses fresh strategy clones prepared for the *shifted* query and a
        fresh integrator fork from the anchor's seed, so per-candidate
        decisions match what a cold full evaluation would produce
        (composition independence makes the restriction to a subset of
        candidates invisible).  On success returns
        ``(answer, shifted_query, re-anchored_region)``.
        """
        region = sub.region
        query = sub.query
        shifted = ProbabilisticRangeQuery(
            Gaussian(mean, query.gaussian.sigma), query.delta, query.theta
        )
        strategies = [s.clone() for s in self.engine.strategies]
        search = SearchStage(self.engine.index, phase1=self.engine.phase1)
        stats = QueryStats()
        rect = search.prepare(shifted, strategies, stats)
        if rect is None:
            # A strategy proved the shifted answer empty — which subsumes
            # every certain accept (both proofs are sound).
            answer: tuple[int, ...] = ()
        else:
            assert region.cached_rect is not None
            if not region.cached_rect.contains_rect(rect):
                return None
            rows = decision.recheck
            assert rows is not None
            ctx = StageContext(
                shifted,
                strategies,
                self.engine.integrator.fork(_anchor_seed(query)),
                stats,
                candidate_ids=region.ids[rows],
                points=region.points[rows],
            )
            FilterStage().run(ctx)
            IntegrateStage().run(ctx)
            certain = region.certain_accept_ids(decision)
            answer = tuple(
                sorted(set(certain) | {int(i) for i in ctx.accepted})
            )
        new_region = SafeRegion.build(
            shifted,
            answer,
            index=self.database.index,
            point_of=self.database.point,
            anchor_rect=rect,
            margin=self.margin,
            reuse=region,
            radii=(region.r_accept, region.r_reject),
        )
        return answer, shifted, new_region

"""Bounded admission queue with dynamic micro-batch coalescing.

The service's scheduler thread blocks on :meth:`AdmissionQueue.next_batch`
which implements the batch-window/max-batch policy: once the first
request arrives, the drain waits up to ``window`` seconds for more to
coalesce (so concurrent clients share one ``run_batch`` call) but never
longer — a lone request pays at most the window in added latency, and a
burst is capped at ``max_batch`` per drain so no single drain starves the
queue behind it.

Admission is strictly non-blocking: :meth:`AdmissionQueue.offer` either
enqueues or returns ``False`` immediately when the bound is hit — the
*reject-when-full* half of the service's backpressure story.  Drains pop
by descending ``priority`` (FIFO within a level).

The queue reads time through an injectable ``clock`` (default
``time.monotonic``): the batch-window deadline is computed against it, so
a service under a virtual/fake clock keeps every timing decision —
deadline expiry *and* window elapse — on the same timeline.  Condition
waits still sleep in real time (a thread cannot block on virtual time),
so a clock that fails to advance across a timed-out wait is treated as an
elapsed window rather than looping forever.
"""

from __future__ import annotations

import threading
import time

from repro.errors import ServiceError

__all__ = ["AdmissionQueue"]


class AdmissionQueue:
    """A bounded, priority-aware request queue for the scheduler thread.

    Items must expose ``priority`` (higher drains first); arrival order
    breaks ties.  All methods are thread-safe; ``offer`` never blocks.
    ``clock`` injects the time source used for the batch-window deadline
    (the service passes its own, so tests can drive both deadlines and
    window waits from one fake clock).
    """

    def __init__(self, max_queue: int, *, clock=None):
        if max_queue < 1:
            raise ServiceError(f"max_queue must be >= 1, got {max_queue}")
        self.max_queue = int(max_queue)
        self._clock = clock if clock is not None else time.monotonic
        self._items: list = []
        self._seq = 0
        self._lock = threading.Lock()
        self._nonempty = threading.Condition(self._lock)
        self._closed = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def offer(self, item) -> bool:
        """Enqueue ``item`` or return ``False`` when the queue is full.

        Never blocks — this is the admission-control edge: a ``False``
        here becomes a typed ``overloaded`` response upstream.
        """
        with self._lock:
            if self._closed:
                raise ServiceError("queue is closed")
            if len(self._items) >= self.max_queue:
                return False
            self._items.append((item, self._seq))
            self._seq += 1
            self._nonempty.notify()
            return True

    def next_batch(
        self, *, max_batch: int, window: float, poll: float = 0.05
    ) -> list:
        """Drain up to ``max_batch`` items under the batch-window policy.

        Blocks up to ``poll`` seconds for a first item (returning ``[]``
        on timeout, so the caller can check its stop flag); once one is
        present, waits until either ``window`` seconds have passed on the
        injected clock since the drain began or ``max_batch`` items are
        queued, then pops the highest-priority ``max_batch`` items (FIFO
        within a priority).
        """
        with self._nonempty:
            if not self._items:
                if self._closed:
                    return []
                self._nonempty.wait(timeout=poll)
                if not self._items:
                    return []
            now = self._clock()
            deadline = now + window
            while len(self._items) < max_batch and not self._closed:
                remaining = deadline - now
                if remaining <= 0:
                    break
                notified = self._nonempty.wait(timeout=min(remaining, poll))
                previous, now = now, self._clock()
                if not notified and now <= previous:
                    # The injected clock did not move across a real timed
                    # wait: it is frozen (or fully virtual), so the window
                    # can never elapse on its own.  Treat it as elapsed.
                    break
            return self._pop_locked(max_batch)

    def drain(self, max_batch: int) -> list:
        """Pop up to ``max_batch`` items immediately, without waiting.

        The manual-scheduling path (:meth:`QueryService.pump`): a
        virtual-time driver decides *when* the window has elapsed on its
        own timeline and then drains synchronously.
        """
        with self._lock:
            return self._pop_locked(max_batch)

    def _pop_locked(self, max_batch: int) -> list:
        # Stable sort on -priority keeps FIFO order within a level.
        self._items.sort(key=lambda pair: (-pair[0].priority, pair[1]))
        taken = self._items[:max_batch]
        del self._items[: len(taken)]
        return [item for item, _ in taken]

    def close(self) -> None:
        """Refuse further offers and wake any blocked drain."""
        with self._lock:
            self._closed = True
            self._nonempty.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

"""repro.serve — an embedded, zero-network query service.

The serving layer turns one :class:`~repro.core.database.SpatialDatabase`
into a long-lived, thread-safe query endpoint without any network stack:
clients in the same process :meth:`~QueryService.submit`
:class:`PRQRequest` objects and receive futures of typed
:class:`PRQResponse` answers.  A single scheduler thread coalesces
concurrent requests into the engine's batched execution path (dynamic
micro-batching), enforces admission control at a bounded queue, degrades
deadline-pressed requests to sound sandwich-bound answers, and serves
repeated requests from a keyed LRU result cache.

Entry points::

    service = db.serve(max_batch=32, batch_window=0.002)   # or
    service = QueryService(db, ServiceConfig(...))
    response = service.query(PRQRequest(gaussian, delta, theta))

``repro serve`` exposes the same loop over JSON-lines on the command
line.  The full lifecycle, batching knobs, degradation semantics and
telemetry contract are documented in ``docs/serving.md``.

The service also hosts *standing* queries: ``service.monitor`` is a
:class:`SubscriptionManager` that anchors each subscription to a
pre-approximated safe region and answers location updates in O(1)
whenever the cached answer provably survives (``docs/monitoring.md``).
"""

from __future__ import annotations

from repro.serve.batching import AdmissionQueue
from repro.serve.cache import ResultCache
from repro.serve.degrade import DEGRADED_TIER, CostTracker, degraded_execute
from repro.serve.monitor import (
    MonitorRequest,
    MonitorResponse,
    MonitorSnapshot,
    OUTCOME_DEGRADED,
    OUTCOME_REINTEGRATED,
    OUTCOME_REPLANNED,
    OUTCOME_SURVIVED,
    REQUEST_NOTIFY,
    REQUEST_SUBSCRIBE,
    REQUEST_TYPES,
    REQUEST_UNSUBSCRIBE,
    REQUEST_UPDATE,
    SubscriptionManager,
)
from repro.serve.request import (
    PRQRequest,
    PRQResponse,
    STATUS_DEADLINE_EXCEEDED,
    STATUS_DEGRADED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_OVERLOADED,
)
from repro.serve.service import QueryService, ServiceConfig, ServiceSnapshot

__all__ = [
    "QueryService",
    "ServiceConfig",
    "ServiceSnapshot",
    "PRQRequest",
    "PRQResponse",
    "SubscriptionManager",
    "MonitorSnapshot",
    "MonitorRequest",
    "MonitorResponse",
    "AdmissionQueue",
    "ResultCache",
    "CostTracker",
    "degraded_execute",
    "DEGRADED_TIER",
    "STATUS_OK",
    "STATUS_DEGRADED",
    "STATUS_OVERLOADED",
    "STATUS_DEADLINE_EXCEEDED",
    "STATUS_FAILED",
    "REQUEST_SUBSCRIBE",
    "REQUEST_UPDATE",
    "REQUEST_UNSUBSCRIBE",
    "REQUEST_NOTIFY",
    "REQUEST_TYPES",
    "OUTCOME_SURVIVED",
    "OUTCOME_REINTEGRATED",
    "OUTCOME_REPLANNED",
    "OUTCOME_DEGRADED",
]

"""Request and response types for the embedded query service.

A :class:`PRQRequest` is one client's PRQ(q, δ, θ) plus its service-level
envelope — deadline, priority, request id.  The service answers every
request with a :class:`PRQResponse` whose ``status`` is always one of the
five ``STATUS_*`` constants; overload and deadline misses are *responses*
(carrying the matching typed :class:`repro.errors.ServiceError`), never
exceptions thrown at the submitting thread.

Determinism contract: a request's :meth:`PRQRequest.seed_sequence` is
derived from a SHA-256 fingerprint of its exact parameters (center,
covariance, δ, θ), so any sampling integrator the service forks for it
draws the same stream no matter which micro-batch the request lands in —
responses are a pure function of the request, independent of coalescing.
"""

from __future__ import annotations

import functools
import hashlib
from dataclasses import dataclass

import numpy as np

from repro.core.query import ProbabilisticRangeQuery
from repro.core.stats import QueryStats
from repro.errors import ReproError, ServiceError
from repro.gaussian.distribution import Gaussian

__all__ = [
    "PRQRequest",
    "PRQResponse",
    "STATUS_OK",
    "STATUS_DEGRADED",
    "STATUS_OVERLOADED",
    "STATUS_DEADLINE_EXCEEDED",
    "STATUS_FAILED",
]

#: The request completed fully; ``ids`` is the exact PRQ answer.
STATUS_OK = "ok"
#: The request was downgraded to bounded evaluation to meet its deadline;
#: ``ids`` holds only *certain* accepts and ``bounds`` the undecided rest.
STATUS_DEGRADED = "degraded"
#: Admission control rejected the request (queue full); never executed.
STATUS_OVERLOADED = "overloaded"
#: The deadline expired while the request waited in the queue.
STATUS_DEADLINE_EXCEEDED = "deadline_exceeded"
#: Execution raised a typed error; ``error`` carries it.
STATUS_FAILED = "failed"


@dataclass(frozen=True)
class PRQRequest:
    """One client request: a PRQ spec plus its service envelope.

    Parameters
    ----------
    gaussian:
        The query object's location distribution N(q, Σ).
    delta, theta:
        The PRQ range and probability threshold (validated exactly as
        :class:`~repro.core.query.ProbabilisticRangeQuery` does).
    deadline:
        Optional latency budget in *seconds from submission*.  A request
        still queued past its deadline is answered
        ``deadline_exceeded``; one that would (predictably) blow the
        budget under full evaluation is downgraded along the cascade and
        answered ``degraded`` with sound probability bounds.
    priority:
        Higher values are drained from the queue first (FIFO within a
        priority level).  Admission control ignores priority: a full
        queue rejects everyone equally.
    request_id:
        Optional caller-supplied correlation id, echoed on the response.
    """

    gaussian: Gaussian
    delta: float
    theta: float
    deadline: float | None = None
    priority: int = 0
    request_id: int | str | None = None

    def __post_init__(self) -> None:
        # Delegate PRQ validation (delta/theta/gaussian checks) eagerly,
        # so a malformed request fails at construction, not deep inside
        # the scheduler thread.
        query = ProbabilisticRangeQuery(self.gaussian, self.delta, self.theta)
        object.__setattr__(self, "_query", query)
        if self.deadline is not None and not self.deadline >= 0:
            raise ServiceError(
                f"deadline must be >= 0 seconds, got {self.deadline}"
            )

    @classmethod
    def from_query(
        cls,
        query: ProbabilisticRangeQuery,
        *,
        deadline: float | None = None,
        priority: int = 0,
        request_id: int | str | None = None,
    ) -> "PRQRequest":
        """Wrap an already-built query — including kinded ones — as a request.

        This is how uncertain-target, mixture and k-NN queries
        (:mod:`repro.core.kinds`) ride through the service: the query
        object itself is preserved, so the engine executes it through the
        same kind adapters as a direct ``run_batch`` call.
        """
        request = cls(
            query.gaussian,
            query.delta,
            query.theta,
            deadline=deadline,
            priority=priority,
            request_id=request_id,
        )
        object.__setattr__(request, "_query", query)
        return request

    @property
    def query(self) -> ProbabilisticRangeQuery:
        """The validated PRQ spec this request asks for."""
        return self._query  # type: ignore[attr-defined]

    @functools.cached_property
    def fingerprint(self) -> bytes:
        """SHA-256 over the exact query parameters (center, Σ, δ, θ).

        Two requests share a fingerprint iff their query parameters are
        bit-identical — the exactness guarantee behind both the result
        cache and the per-request RNG stream.  Kinded queries
        (:meth:`from_query`) additionally hash their kind tag and the
        kind parameters (mixture components and weights; k-NN's ``k``,
        sample budget and seed), so a mixture never collides with a plain
        PRQ on its envelope.
        """
        digest = hashlib.sha256()
        digest.update(np.ascontiguousarray(self.gaussian.mean, float).tobytes())
        digest.update(np.ascontiguousarray(self.gaussian.sigma, float).tobytes())
        digest.update(np.float64(self.delta).tobytes())
        digest.update(np.float64(self.theta).tobytes())
        query = self.query
        kind = getattr(query, "kind", "prq")
        if kind != "prq":
            digest.update(kind.encode())
        if kind == "mixture":
            mixture = query.mixture  # type: ignore[attr-defined]
            for component, weight in zip(mixture.components, mixture.weights):
                digest.update(
                    np.ascontiguousarray(component.mean, float).tobytes()
                )
                digest.update(
                    np.ascontiguousarray(component.sigma, float).tobytes()
                )
                digest.update(np.float64(weight).tobytes())
        elif kind == "knn":
            digest.update(np.int64(query.k).tobytes())  # type: ignore[attr-defined]
            digest.update(np.int64(query.n_samples).tobytes())  # type: ignore[attr-defined]
            digest.update(repr(query.seed).encode())  # type: ignore[attr-defined]
        return digest.digest()

    def seed_sequence(self) -> np.random.SeedSequence:
        """A seed stream that is a pure function of the query parameters.

        The service forks sampling integrators from this, so estimates
        never depend on which micro-batch (or queue position) the
        request rode in.
        """
        entropy = int.from_bytes(self.fingerprint[:16], "big")
        return np.random.SeedSequence(entropy)


@dataclass(frozen=True)
class PRQResponse:
    """The service's answer to one :class:`PRQRequest`.

    ``status`` is one of the ``STATUS_*`` constants.  For ``degraded``
    responses, ``ids`` lists only objects *proven* to qualify and
    ``bounds`` carries one ``(object_id, lower, upper)`` triple per
    candidate whose qualification probability could not be decided
    against θ within the degraded budget — the interval is a rigorous
    enclosure of the true probability (χ² sandwich bounds), so a client
    can still act soundly on partial information.
    """

    request_id: int | str | None
    status: str
    ids: tuple[int, ...] = ()
    #: True iff ``status == STATUS_DEGRADED``.
    degraded: bool = False
    #: Sound per-candidate probability bounds for undecided candidates
    #: of a degraded response: ``(object_id, lower, upper)`` triples.
    bounds: tuple[tuple[int, float, float], ...] = ()
    #: The typed error behind an ``overloaded``/``deadline_exceeded``/
    #: ``failed`` status; ``None`` on success.
    error: ReproError | None = None
    #: True when the answer came from the result cache (no execution).
    cache_hit: bool = False
    #: Size of the coalesced micro-batch this request executed in
    #: (0 when it never executed: cache hits, rejections).
    batch_size: int = 0
    #: Seconds spent queued before execution started.
    queued_seconds: float = 0.0
    #: Seconds from submission to response completion.
    service_seconds: float = 0.0
    #: Engine statistics for executed requests (``None`` otherwise).
    stats: QueryStats | None = None

    @property
    def ok(self) -> bool:
        """True when the request produced a usable answer (ok/degraded)."""
        return self.status in (STATUS_OK, STATUS_DEGRADED)

    def to_dict(self) -> dict:
        """A JSON-serializable digest (the ``repro serve`` output rows)."""
        payload: dict = {
            "id": self.request_id,
            "status": self.status,
            "ids": list(self.ids),
            "degraded": self.degraded,
            "cache_hit": self.cache_hit,
            "batch_size": self.batch_size,
            "queued_ms": round(self.queued_seconds * 1e3, 3),
            "service_ms": round(self.service_seconds * 1e3, 3),
        }
        if self.bounds:
            payload["bounds"] = [
                [obj_id, lower, upper] for obj_id, lower, upper in self.bounds
            ]
        if self.error is not None:
            payload["error"] = str(self.error)
        return payload

"""Deadline-aware degradation: bounded answers instead of late ones.

When a request's remaining deadline budget is smaller than the service's
running estimate of full Phase-3 cost, the scheduler downgrades it along
the existing evaluation cascade: Phases 1–2 run unchanged (they are
cheap and exact), but Phase 3 is capped at the cascade's first tier —
the vectorised noncentral-χ² *sandwich bounds* of
:func:`repro.gaussian.quadform.chi2_sandwich_bounds_block`.  One CDF call
over the whole candidate block yields a rigorous ``[lower, upper]``
enclosure of every qualification probability:

- ``lower ≥ θ`` — the candidate *provably* qualifies → returned in
  ``ids``;
- ``upper < θ`` — provably does not qualify → dropped;
- otherwise — undecided; returned in ``bounds`` as an
  ``(object_id, lower, upper)`` triple.

The response is flagged ``degraded=True`` and its bounds are sound: the
true probability always lies inside the reported interval, so a client
can still act safely on it (treat undecided as "maybe", or re-submit
without a deadline).  :class:`CostTracker` supplies the full-cost
prediction — an exponential moving average over recently executed
requests, seeded by the planner's own prediction when one is available.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.query import ProbabilisticRangeQuery
from repro.core.stages import FilterStage, SearchStage, StageContext
from repro.core.stats import QueryStats
from repro.errors import ServiceError
from repro.gaussian.quadform import chi2_sandwich_bounds_block

__all__ = ["CostTracker", "degraded_execute", "DEGRADED_TIER"]

#: Phase-3 decision label degraded requests record in
#: ``QueryStats.tier_decisions`` (mirrors the cascade's ``cascade-*``).
DEGRADED_TIER = "degraded-sandwich"


class CostTracker:
    """Exponential moving average of full per-request execution cost.

    The scheduler feeds it each executed request's wall seconds; the
    degradation check asks :meth:`predict` whether a pending request's
    remaining budget covers a full execution (with a safety factor, so a
    borderline request degrades rather than gambles).  Before any sample
    arrives the tracker predicts ``prior`` seconds — choose it generous
    so a cold service degrades conservatively only for genuinely tight
    deadlines.
    """

    def __init__(self, *, alpha: float = 0.2, prior: float = 0.05):
        if not 0 < alpha <= 1:
            raise ServiceError(f"alpha must lie in (0, 1], got {alpha}")
        if prior <= 0:
            raise ServiceError(f"prior must be > 0 seconds, got {prior}")
        self._alpha = float(alpha)
        self._ema = float(prior)
        self._samples = 0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        """Fold one executed request's wall seconds into the average."""
        if seconds < 0:
            return
        with self._lock:
            if self._samples == 0:
                self._ema = float(seconds)
            else:
                self._ema += self._alpha * (float(seconds) - self._ema)
            self._samples += 1

    def predict(self) -> float:
        """Predicted seconds to fully execute one request."""
        with self._lock:
            return self._ema

    @property
    def samples(self) -> int:
        with self._lock:
            return self._samples

    def would_exceed(self, remaining: float, *, safety: float) -> bool:
        """True when ``remaining`` seconds cannot cover a full run."""
        return remaining < self.predict() * safety


def degraded_execute(
    engine, query: ProbabilisticRangeQuery
) -> tuple[tuple[int, ...], tuple[tuple[int, float, float], ...], QueryStats]:
    """Run Phases 1–2 fully, then bound Phase 3 with one sandwich pass.

    Returns ``(certain_ids, bounds, stats)``: the sorted ids proven to
    qualify (filter free-accepts plus sandwich ``lower ≥ θ``), one
    ``(object_id, lower, upper)`` triple per undecided candidate, and the
    usual per-phase statistics (Phase-3 decisions recorded under
    ``degraded-sandwich``).  Uses fresh strategy clones, so the engine —
    and any concurrent full batch on it — is never mutated.
    """
    stats = QueryStats()
    strategies = [s.clone() for s in engine.strategies]
    ctx = StageContext(query, strategies, engine.integrator, stats)
    search = SearchStage(engine.index, phase1=engine.phase1)
    with stats.time_phase("search"):
        search.run(ctx)
    bounds: list[tuple[int, float, float]] = []
    if not ctx.finished:
        with stats.time_phase("filter"):
            FilterStage().run(ctx)
        assert ctx.undecided is not None and ctx.candidate_ids is not None
        rows = np.nonzero(ctx.undecided)[0]
        stats.integrations = int(rows.size)
        if rows.size:
            with stats.time_phase("integrate"):
                enclosure = chi2_sandwich_bounds_block(
                    query.gaussian, ctx.points[rows], query.delta
                )
                lower, upper = enclosure[:, 0], enclosure[:, 1]
                certain_accept = lower >= query.theta
                certain_reject = upper < query.theta
                undecided = ~(certain_accept | certain_reject)
                for slot in rows[certain_accept]:
                    ctx.accepted.append(int(ctx.candidate_ids[slot]))
                for slot, lo, hi in zip(
                    ctx.candidate_ids[rows[undecided]],
                    lower[undecided],
                    upper[undecided],
                ):
                    bounds.append((int(slot), float(lo), float(hi)))
                stats.note_decision(DEGRADED_TIER, int(rows.size))
    ids = tuple(sorted(int(i) for i in ctx.accepted))
    stats.results = len(ids)
    bounds.sort(key=lambda triple: triple[0])
    return ids, tuple(bounds), stats

"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

``demo``
    Generate a small dataset, run one probabilistic range query with every
    strategy combination, and print the comparison.
``query``
    Run one query against a saved database (a ``.soa`` store or legacy
    ``.npz`` from :meth:`SpatialDatabase.save`).  ``--kind`` selects the
    query kind — exact-target PRQ (default), uncertain-target PRQ
    (``--target-sigma-scale``), Gaussian-mixture query object (repeated
    ``--component`` plus ``--weights``), or probabilistic k-NN (``--k``,
    ``--knn-samples``); every kind runs through the same unified stage
    pipeline (``docs/query_types.md``).
``explain``
    Print the query plan — strategy regions, BF radii, predicted phase-3
    candidates and (with ``--strategies auto``) the cost-based planner's
    full plan comparison — without running Phase 3.
``catalog``
    Build an r_θ or BF U-catalog and write it to JSON.
``dataset``
    Generate one of the synthetic datasets and save it (``--format npz``
    portable archive, or ``soa`` memory-mapped store).
``kernels``
    Show which kernel backend (compiled C or NumPy fallback) this
    process selected, per kernel, and the compile cache location.
``experiment``
    Run one of the paper's experiments and print its table (``all`` runs
    the complete report).
``figures``
    Render Figs. 13-17 and the road-network overview as SVG files.
``trace``
    Render a JSON-lines trace (written by ``query --trace-out``) as an
    indented span tree plus a per-span-name summary table.
``serve``
    Run the embedded query service (:mod:`repro.serve`) over a JSON-lines
    request stream (file or stdin): requests are admitted, micro-batched
    and answered one JSON response per line on stdout, with the service
    counters summarised on stderr.  See ``docs/serving.md``.
``load``
    Drive the embedded service with an open-loop scenario workload —
    a single run at one offered rate, or a ``--sweep`` saturation ladder
    that locates the shedding knee and writes the machine-readable
    capacity report (``BENCH_capacity.json``), optionally trend-gated
    against a committed baseline (``--check-against``).  See
    ``docs/load.md``.

Observability: ``query`` accepts ``--trace-out FILE`` (JSON-lines spans,
viewable with ``repro trace FILE``) and ``--metrics-out FILE``
(Prometheus-style text exposition).  Both are off by default and never
change query results; the full telemetry contract lives in
``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import __version__

__all__ = ["main", "build_parser"]


def _add_kind_arguments(command) -> None:
    """The query-kind options shared by ``query`` and ``explain``."""
    command.add_argument("--kind", default="prq",
                         choices=["prq", "uncertain", "mixture", "knn"],
                         help="query kind: exact-target PRQ (default), "
                         "uncertain-target PRQ, Gaussian-mixture query "
                         "object, or probabilistic k-NN — all run through "
                         "the unified stage pipeline (docs/query_types.md)")
    command.add_argument("--target-sigma-scale", type=float, default=None,
                         metavar="SCALE",
                         help="give every database object a Gaussian "
                         "location N(point, SCALE*I); implied (1.0) by "
                         "--kind uncertain")
    command.add_argument("--component", type=float, nargs="+",
                         action="append", default=None, metavar="COORD",
                         help="one mixture component mean per flag "
                         "(--kind mixture); components share --sigma-scale")
    command.add_argument("--weights", type=float, nargs="+", default=None,
                         help="mixture component weights (default: uniform)")
    command.add_argument("--k", type=int, default=1,
                         help="neighbour count for --kind knn")
    command.add_argument("--knn-samples", type=int, default=2_000,
                         help="Monte Carlo sample budget for --kind knn")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Probabilistic spatial range queries for Gaussian-based "
        "imprecise query objects (ICDE 2009 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="run a demonstration query")
    demo.add_argument("--points", type=int, default=10_000)
    demo.add_argument("--delta", type=float, default=25.0)
    demo.add_argument("--theta", type=float, default=0.01)
    demo.add_argument("--gamma", type=float, default=10.0)
    demo.add_argument("--seed", type=int, default=0)

    query = commands.add_parser("query", help="query a saved database")
    query.add_argument("database", help="database file from SpatialDatabase.save (.soa store or legacy .npz)")
    query.add_argument("--center", type=float, nargs="+", default=None)
    query.add_argument("--sigma-scale", type=float, default=1.0,
                       help="isotropic covariance scale (variance)")
    query.add_argument("--delta", type=float, default=None)
    query.add_argument("--theta", type=float, default=None)
    _add_kind_arguments(query)
    query.add_argument("--strategies", default="all",
                       help="strategy spec (rr, bf, rr+bf, rr+or, bf+or, "
                       "all, em, em+bf) or 'auto' for cost-based planning")
    query.add_argument("--integrator", default=None,
                       choices=["importance", "sequential", "exact", "cascade"],
                       help="Phase-3 evaluator: the paper's fixed-budget "
                       "importance sampler, the adaptive sequential sampler, "
                       "the exact quadratic-form CDF, or the deterministic "
                       "sandwich/Ruben/Imhof cascade (default: engine "
                       "default, i.e. importance sampling)")
    query.add_argument("--exact", action="store_true",
                       help="shorthand for --integrator exact")
    query.add_argument("--batch", default=None, metavar="FILE",
                       help="JSON file with a list of query specs "
                       '[{"center": [...], "delta": d, "theta": t, '
                       '"sigma_scale": s?, "kind": k?}, ...]; runs them '
                       "all through QueryEngine.run_batch (kinds may be "
                       "mixed within one batch; --kind sets the default)")
    query.add_argument("--workers", type=int, default=1,
                       help="worker threads for --batch execution "
                       "(results are identical for any worker count)")
    query.add_argument("--shards", type=int, default=1,
                       help="partition the database into N spatial shards "
                       "and scatter-gather across worker processes "
                       "(docs/sharding.md); 1 = single-process execution")
    query.add_argument("--seed", type=int, default=0,
                       help="base seed for the per-query RNG streams of "
                       "--batch execution")
    query.add_argument("--trace-out", default=None, metavar="FILE",
                       help="write the execution trace as JSON-lines spans "
                       "(render with 'repro trace FILE')")
    query.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="write the metrics registry as Prometheus-style "
                       "text exposition")

    explain = commands.add_parser(
        "explain", help="show the query plan without integrating"
    )
    explain.add_argument("database", help="database file from SpatialDatabase.save (.soa store or legacy .npz)")
    explain.add_argument("--center", type=float, nargs="+", default=None)
    explain.add_argument("--sigma-scale", type=float, default=1.0,
                         help="isotropic covariance scale (variance)")
    explain.add_argument("--delta", type=float, default=None)
    explain.add_argument("--theta", type=float, required=True)
    _add_kind_arguments(explain)
    explain.add_argument("--strategies", default="auto",
                         help="strategy spec or 'auto' for the cost-based "
                         "planner (default: auto)")
    explain.add_argument("--integrator", default=None,
                         choices=["importance", "sequential", "exact",
                                  "cascade"],
                         help="Phase-3 evaluator assumed by the cost model")
    explain.add_argument("--seed", type=int, default=0)

    catalog = commands.add_parser("catalog", help="build a U-catalog")
    catalog.add_argument("kind", choices=["rtheta", "bf"])
    catalog.add_argument("output", help="JSON file to write")
    catalog.add_argument("--dim", type=int, required=True)
    catalog.add_argument("--resolution", type=int, default=33)
    catalog.add_argument("--deltas", type=float, nargs="+", default=None,
                         help="delta grid for BF catalogs")
    catalog.add_argument("--monte-carlo", action="store_true",
                         help="build by sampling (paper-faithful) instead of "
                         "the closed form")
    catalog.add_argument("--seed", type=int, default=0)

    dataset = commands.add_parser("dataset", help="generate a dataset")
    dataset.add_argument("kind", choices=["road", "corel", "uniform"])
    dataset.add_argument("output", help="database file to write")
    dataset.add_argument("--size", type=int, default=None)
    dataset.add_argument("--dim", type=int, default=2)
    dataset.add_argument("--seed", type=int, default=0)
    dataset.add_argument(
        "--format", choices=["npz", "soa"], default="npz",
        help="npz (default, portable archive) or soa (memory-mapped "
        "store with O(1) load)",
    )

    commands.add_parser(
        "kernels",
        help="show the compiled-kernel backend selected for this process",
    )

    experiment = commands.add_parser(
        "experiment", help="run one of the paper's experiments"
    )
    experiment.add_argument(
        "name",
        choices=["table1", "table2", "table3", "regions", "fig17",
                 "sensitivity-delta", "sensitivity-theta", "sensitivity-shape",
                 "ablation-em", "ablation-sequential", "extension-3d", "all"],
    )
    experiment.add_argument("--trials", type=int, default=3)
    experiment.add_argument("--samples", type=int, default=20_000)
    experiment.add_argument("--output", default=None,
                            help="for 'all': also write the report to a file")

    figures = commands.add_parser(
        "figures", help="render the paper's figures as SVG"
    )
    figures.add_argument("output_dir", help="directory to write SVG files into")

    serve = commands.add_parser(
        "serve", help="run the embedded query service over JSON-lines requests"
    )
    serve.add_argument("database", help="database file from SpatialDatabase.save (.soa store or legacy .npz)")
    serve.add_argument("--requests", default="-", metavar="FILE",
                       help="JSON-lines request file ('-' = stdin, default); "
                       'each line: {"center": [...], "delta": d, "theta": t, '
                       '"sigma_scale": s?, "deadline_ms": ms?, "priority": p?, '
                       '"id": any?, "kind": "prq"|"uncertain"|"mixture"|"knn"?'
                       "} (kinded specs take the fields described in "
                       "docs/query_types.md).  Lines carrying a \"type\" of "
                       "subscribe/update/unsubscribe/notify are standing-"
                       "query requests (docs/monitoring.md): subscribe takes "
                       'the query fields plus "sub": key?; update takes '
                       '{"type": "update", "sub": key, "center": [...], '
                       '"sigma": [[...]]?, "deadline_ms": ms?}')
    serve.add_argument("--max-batch", type=int, default=32,
                       help="largest coalesced micro-batch per drain")
    serve.add_argument("--window-ms", type=float, default=2.0,
                       help="batch window: how long a drain waits after the "
                       "first request for more to coalesce")
    serve.add_argument("--queue-size", type=int, default=256,
                       help="admission-queue bound; requests beyond it are "
                       "answered 'overloaded' immediately")
    serve.add_argument("--workers", type=int, default=4,
                       help="worker threads per coalesced run_batch call")
    serve.add_argument("--strategies", default="all",
                       help="strategy spec or 'auto' for cost-based planning")
    serve.add_argument("--target-sigma-scale", type=float, default=None,
                       metavar="SCALE",
                       help="give every database object a Gaussian location "
                       "N(point, SCALE*I) so requests with "
                       '"kind": "uncertain" can be served')
    serve.add_argument("--integrator", default="cascade",
                       choices=["importance", "exact", "cascade"],
                       help="Phase-3 evaluator (default: the deterministic "
                       "cascade — responses are then bit-identical to direct "
                       "run_batch execution)")
    serve.add_argument("--cache-size", type=int, default=1024,
                       help="result-cache capacity (0 disables caching)")
    serve.add_argument("--no-degrade", action="store_true",
                       help="never degrade deadline-pressed requests; they "
                       "run fully and may miss their deadlines")
    serve.add_argument("--seed", type=int, default=0,
                       help="seed for sampling integrators (per-request "
                       "streams are still fingerprint-derived)")
    serve.add_argument("--trace-out", default=None, metavar="FILE",
                       help="write the service trace as JSON-lines spans")
    serve.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="write the metrics registry as Prometheus-style "
                       "text exposition")

    monitor = commands.add_parser(
        "monitor",
        help="demo safe-region monitoring: a moving fleet of standing "
        "queries (docs/monitoring.md)",
    )
    monitor.add_argument("database", help="database file from "
                         "SpatialDatabase.save (.soa store or legacy .npz)")
    monitor.add_argument("--subscriptions", type=int, default=200,
                         help="standing queries to register")
    monitor.add_argument("--steps", type=int, default=20,
                         help="location-update rounds over the whole fleet")
    monitor.add_argument("--step-sd", type=float, default=None, metavar="SD",
                         help="per-step movement std-dev per axis (default: "
                         "0.1%% of the data extent)")
    monitor.add_argument("--delta", type=float, default=None,
                         help="range threshold (default: 2%% of the extent)")
    monitor.add_argument("--theta", type=float, default=0.5,
                         help="probability threshold")
    monitor.add_argument("--sigma-scale", type=float, default=None,
                         metavar="SCALE",
                         help="isotropic query covariance SCALE*I (default: "
                         "(delta/8)^2)")
    monitor.add_argument("--deadline-ms", type=float, default=None,
                         help="per-update deadline; pressed updates degrade "
                         "to sound probability intervals")
    monitor.add_argument("--seed", type=int, default=0,
                         help="fleet placement/trajectory seed")
    monitor.add_argument("--trace-out", default=None, metavar="FILE",
                         help="write the monitor trace as JSON-lines spans")
    monitor.add_argument("--metrics-out", default=None, metavar="FILE",
                         help="write the metrics registry as Prometheus-"
                         "style text exposition")

    load = commands.add_parser(
        "load",
        help="open-loop load harness: scenario runs and capacity sweeps "
        "against the embedded service (docs/load.md)",
    )
    load.add_argument("database", help="database file from "
                      "SpatialDatabase.save (.soa store or legacy .npz)")
    load.add_argument("--scenario", default="hotkey", metavar="NAME|FILE",
                      help="built-in scenario (uniform, hotkey, mixed, "
                      "storm) or a JSON ScenarioSpec file (default: hotkey)")
    load.add_argument("--rate", type=float, default=None,
                      help="offered rate in requests/second for a single "
                      "run (ignored with --sweep)")
    load.add_argument("--sweep", action="store_true",
                      help="step offered load up a rate ladder, locate the "
                      "shedding knee and write the capacity report")
    load.add_argument("--rates", default=None, metavar="R1,R2,...",
                      help="ascending offered rates for --sweep (default: "
                      "a geometric ladder around the modelled capacity)")
    load.add_argument("--duration", type=float, default=2.0,
                      help="seconds of offered traffic per step")
    load.add_argument("--real", action="store_true",
                      help="drive a real threaded service on the wall clock "
                      "(default: deterministic virtual time on a modelled "
                      "cost; see docs/load.md)")
    load.add_argument("--cost-ms", type=float, default=4.0,
                      help="virtual mode: modelled full-fidelity cost per "
                      "query in milliseconds")
    load.add_argument("--parallelism", type=float, default=4.0,
                      help="virtual mode: modelled worker parallelism "
                      "inside one coalesced batch")
    load.add_argument("--batch-overhead-ms", type=float, default=0.5,
                      help="virtual mode: modelled fixed cost per batch")
    load.add_argument("--max-batch", type=int, default=32,
                      help="largest coalesced micro-batch per drain")
    load.add_argument("--window-ms", type=float, default=2.0,
                      help="batch window in milliseconds")
    load.add_argument("--queue-size", type=int, default=256,
                      help="admission-queue bound")
    load.add_argument("--workers", type=int, default=4,
                      help="worker threads per coalesced batch (real mode)")
    load.add_argument("--cache-size", type=int, default=1024,
                      help="result-cache capacity (0 disables caching)")
    load.add_argument("--shed-threshold", type=float, default=0.01,
                      help="shed rate at which the knee is declared")
    load.add_argument("--seed", type=int, default=None,
                      help="override the scenario's seed")
    load.add_argument("--out", default=None, metavar="FILE",
                      help="write the report JSON here (default for "
                      "--sweep: BENCH_capacity.json)")
    load.add_argument("--check-against", default=None, metavar="FILE",
                      help="trend-gate the sweep against a baseline "
                      "capacity report; exits 1 on regression")
    load.add_argument("--tolerance", type=float, default=0.2,
                      help="relative tolerance band for --check-against")

    trace = commands.add_parser(
        "trace", help="render a JSON-lines trace from 'query --trace-out'"
    )
    trace.add_argument("file", help="JSON-lines trace file")
    trace.add_argument("--min-ms", type=float, default=0.0,
                       help="hide spans (and their subtrees) faster than "
                       "this many milliseconds")
    trace.add_argument("--max-spans", type=int, default=None,
                       help="truncate the tree after this many lines")
    trace.add_argument("--summary-only", action="store_true",
                       help="print only the per-span-name aggregate table")

    return parser


# ----------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------


def _cmd_demo(args) -> int:
    from repro import ExactIntegrator, Gaussian, SpatialDatabase
    from repro.bench.harness import paper_sigma
    from repro.core.strategies import STRATEGY_COMBINATIONS

    rng = np.random.default_rng(args.seed)
    points = rng.random((args.points, 2)) * 1000.0
    db = SpatialDatabase(points)
    gaussian = Gaussian([500.0, 500.0], paper_sigma(args.gamma))
    print(f"database: {args.points} uniform points in [0, 1000]^2")
    print(f"query: delta={args.delta}, theta={args.theta}, gamma={args.gamma}\n")
    print(f"{'strategies':>10} {'retrieved':>9} {'integrated':>10} "
          f"{'answers':>7} {'ms':>8}")
    for spec in STRATEGY_COMBINATIONS:
        result = db.probabilistic_range_query(
            gaussian, args.delta, args.theta,
            strategies=spec, integrator=ExactIntegrator(),
        )
        print(f"{spec:>10} {result.stats.retrieved:>9} "
              f"{result.stats.integrations:>10} {len(result):>7} "
              f"{result.stats.total_seconds * 1e3:>8.1f}")
    return 0


def _integrator_choice(args) -> str | None:
    """The selected Phase-3 evaluator name, folding in the --exact shorthand."""
    return args.integrator or ("exact" if args.exact else None)


def _make_integrator(choice: str | None, theta: float | None, seed: int):
    """Build the Phase-3 evaluator for one query (None = engine default)."""
    from repro.integrate import (
        CascadeIntegrator,
        ExactIntegrator,
        ImportanceSamplingIntegrator,
        SequentialImportanceSampler,
    )

    if choice is None:
        return None
    if choice == "importance":
        return ImportanceSamplingIntegrator(seed=seed)
    if choice == "exact":
        return ExactIntegrator()
    if choice == "cascade":
        return CascadeIntegrator()
    return SequentialImportanceSampler(theta, seed=seed, share_batches=True)


def _make_obs(args):
    """An Observability sink when --trace-out/--metrics-out asked for one."""
    if args.trace_out is None and args.metrics_out is None:
        return None
    from repro.obs import Observability

    return Observability(
        trace=args.trace_out is not None,
        metrics=args.metrics_out is not None,
    )


def _export_obs(obs, args) -> None:
    """Write the requested trace/metrics files after a query command."""
    if obs is None:
        return
    from pathlib import Path

    if args.trace_out is not None:
        count = obs.export_trace(args.trace_out)
        print(f"wrote {count} spans to {args.trace_out}")
    if args.metrics_out is not None:
        Path(args.metrics_out).write_text(obs.render_metrics())
        print(f"wrote metrics to {args.metrics_out}")


def _load_database(path):
    """Load a database, mapping failures onto ``error: ...`` + exit 2.

    Missing, truncated, corrupt, or future-version store files raise
    :class:`~repro.errors.DatabaseLoadError` naming the path; a CLI user
    should see that one-line diagnostic, not a traceback.
    """
    from repro import SpatialDatabase
    from repro.errors import DatabaseLoadError

    try:
        return SpatialDatabase.load(path)
    except DatabaseLoadError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2) from exc


def _with_target_table(db, scale):
    """Rebuild a loaded database with a shared isotropic target covariance.

    Saved stores carry only exact points, so the CLI models uncertain
    targets by giving every object the location law N(point, scale * I).
    """
    from repro import SpatialDatabase, TargetCovarianceTable

    value = 1.0 if scale is None else float(scale)
    ids = np.asarray(db.ids)
    table = TargetCovarianceTable.shared(value * np.eye(db.dim), ids)
    return SpatialDatabase(np.asarray(db.points), ids=ids, target_table=table)


def _build_cli_query(dim, args):
    """The kinded query object for one CLI invocation.

    Returns ``(query, None)`` or ``(None, error_message)`` so the caller
    can print the one-line diagnostic and exit 2.
    """
    from repro import Gaussian
    from repro.core.query import ProbabilisticRangeQuery
    from repro.errors import ReproError

    if args.theta is None:
        return None, "--theta is required (or pass --batch FILE)"
    if args.kind == "mixture":
        if not args.component:
            return None, "--kind mixture needs at least one --component"
        bad = [c for c in args.component if len(c) != dim]
        if bad:
            return None, (f"database is {dim}-dimensional; every "
                          f"--component needs {dim} coordinates")
        if args.delta is None:
            return None, "--delta is required"
        from repro import GaussianMixture, MixtureRangeQuery

        try:
            mixture = GaussianMixture(
                [Gaussian(np.asarray(c, dtype=float),
                          args.sigma_scale * np.eye(dim))
                 for c in args.component],
                args.weights,
            )
        except ReproError as exc:
            return None, str(exc)
        return MixtureRangeQuery.create(mixture, args.delta, args.theta), None
    if args.center is None:
        return None, "--center is required (or pass --batch FILE)"
    center = np.asarray(args.center, dtype=float)
    if center.size != dim:
        return None, (f"database is {dim}-dimensional, got "
                      f"{center.size} center coordinates")
    gaussian = Gaussian(center, args.sigma_scale * np.eye(dim))
    if args.kind == "knn":
        from repro import KNNQuery

        return KNNQuery.create(
            gaussian, k=args.k, theta=args.theta,
            n_samples=args.knn_samples, seed=args.seed,
        ), None
    if args.delta is None:
        return None, "--delta is required (or pass --batch FILE)"
    if args.kind == "uncertain":
        from repro import UncertainTargetQuery

        return UncertainTargetQuery(gaussian, args.delta, args.theta), None
    return ProbabilisticRangeQuery(gaussian, args.delta, args.theta), None


def _query_from_spec(spec, dim, *, sigma_scale=1.0, seed=0,
                     default_kind="prq"):
    """One kinded query from a JSON spec (batch line or serve request).

    Raises ``KeyError``/``TypeError``/``ValueError`` or a ``ReproError``
    subclass on a malformed spec; callers map those onto per-line errors.
    """
    from repro import (
        Gaussian,
        GaussianMixture,
        KNNQuery,
        MixtureRangeQuery,
        UncertainTargetQuery,
    )
    from repro.core.query import ProbabilisticRangeQuery

    kind = spec.get("kind", default_kind)
    scale = float(spec.get("sigma_scale", sigma_scale))
    theta = float(spec["theta"])
    if kind == "mixture":
        components = [
            Gaussian(np.asarray(c, dtype=float), scale * np.eye(dim))
            for c in spec["components"]
        ]
        mixture = GaussianMixture(components, spec.get("weights"))
        return MixtureRangeQuery.create(mixture, float(spec["delta"]), theta)
    center = np.asarray(spec["center"], dtype=float)
    if "sigma" in spec:
        sigma = np.asarray(spec["sigma"], dtype=float)
    else:
        sigma = scale * np.eye(dim)
    gaussian = Gaussian(center, sigma)
    if kind == "knn":
        return KNNQuery.create(
            gaussian,
            k=int(spec.get("k", 1)),
            theta=theta,
            n_samples=int(spec.get("n_samples", 2_000)),
            seed=int(spec.get("seed", seed)),
        )
    if kind == "uncertain":
        return UncertainTargetQuery(gaussian, float(spec["delta"]), theta)
    if kind != "prq":
        raise ValueError(f"unknown query kind {kind!r}")
    return ProbabilisticRangeQuery(gaussian, float(spec["delta"]), theta)


def _cmd_query(args) -> int:
    db = _load_database(args.database)
    if args.kind == "uncertain" or args.target_sigma_scale is not None:
        db = _with_target_table(db, args.target_sigma_scale)
    if args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}",
              file=sys.stderr)
        return 2
    sharded = None
    if args.shards > 1:
        sharded = db.shard(args.shards)
    try:
        return _dispatch_query(sharded if sharded is not None else db, args)
    finally:
        if sharded is not None:
            sharded.close()


def _dispatch_query(db, args) -> int:
    if args.batch is not None:
        return _run_query_batch(db, args)
    query, problem = _build_cli_query(db.dim, args)
    if problem is not None:
        print(f"error: {problem}", file=sys.stderr)
        return 2
    integrator = _make_integrator(
        _integrator_choice(args), args.theta, args.seed
    )
    obs = _make_obs(args)
    engine = db.engine(
        strategies=args.strategies, integrator=integrator, obs=obs
    )
    result = engine.execute(query)
    print(f"{len(result)} objects qualify")
    print("ids:", " ".join(str(i) for i in result.ids))
    print("stats:", result.stats.summary())
    if result.stats.tier_decisions:
        print("phase-3 decisions:", " ".join(
            f"{name}={count}"
            for name, count in sorted(result.stats.tier_decisions.items())
        ))
    _export_obs(obs, args)
    return 0


def _run_query_batch(db, args) -> int:
    """Execute a JSON batch file through ``QueryEngine.run_batch``."""
    import json
    from pathlib import Path

    from repro.errors import ReproError

    try:
        specs = json.loads(Path(args.batch).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read batch file {args.batch}: {exc}",
              file=sys.stderr)
        return 2
    if not isinstance(specs, list) or not specs:
        print("error: batch file must hold a non-empty JSON list",
              file=sys.stderr)
        return 2
    if args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}",
              file=sys.stderr)
        return 2
    queries = []
    for i, spec in enumerate(specs):
        try:
            queries.append(_query_from_spec(
                spec, db.dim, sigma_scale=args.sigma_scale,
                seed=args.seed, default_kind=args.kind,
            ))
        except (KeyError, TypeError, ValueError, ReproError) as exc:
            print(f"error: bad query spec #{i}: {exc}", file=sys.stderr)
            return 2
    choice = _integrator_choice(args)
    obs = _make_obs(args)
    if choice == "sequential":
        # The adaptive sampler is tuned to each query's own θ, so the
        # batch path builds one integrator per query via the factory.
        engine = db.engine(strategies=args.strategies, obs=obs)
        factory = lambda query, seed: _make_integrator(  # noqa: E731
            choice, query.theta, seed
        )
    else:
        engine = db.engine(
            strategies=args.strategies,
            integrator=_make_integrator(choice, None, args.seed),
            obs=obs,
        )
        factory = None
    batch = engine.run_batch(
        queries, workers=args.workers, base_seed=args.seed,
        integrator_factory=factory,
    )
    for i, result in enumerate(batch):
        print(f"query {i}: {len(result)} objects "
              f"[{' '.join(str(j) for j in result.ids)}]")
    print("batch:", batch.stats.summary())
    if batch.stats.tier_decisions:
        print("phase-3 decisions:", " ".join(
            f"{name}={count}"
            for name, count in sorted(batch.stats.tier_decisions.items())
        ))
    _export_obs(obs, args)
    return 0


def _cmd_explain(args) -> int:
    db = _load_database(args.database)
    if args.kind == "uncertain" or args.target_sigma_scale is not None:
        db = _with_target_table(db, args.target_sigma_scale)
    query, problem = _build_cli_query(db.dim, args)
    if problem is not None:
        print(f"error: {problem}", file=sys.stderr)
        return 2
    integrator = _make_integrator(args.integrator, args.theta, args.seed)
    engine = db.engine(strategies=args.strategies, integrator=integrator)
    estimator = None
    if db.dim <= 3:
        from repro.core.selectivity import SelectivityEstimator

        estimator = SelectivityEstimator(np.asarray(db.points))
    print(engine.explain(query, estimator=estimator).render())
    return 0


def _cmd_catalog(args) -> int:
    from repro.catalog import BFCatalog, RThetaCatalog, save_catalog

    if args.kind == "rtheta":
        thetas = np.linspace(0.0, 0.5, args.resolution + 2)[1:-1]
        if args.monte_carlo:
            catalog = RThetaCatalog.build_monte_carlo(
                args.dim, thetas, seed=args.seed
            )
        else:
            catalog = RThetaCatalog.build_analytic(args.dim, thetas)
    else:
        deltas = args.deltas or np.geomspace(0.1, 10.0, args.resolution)
        thetas = np.geomspace(1e-4, 0.9, args.resolution)
        if args.monte_carlo:
            catalog = BFCatalog.build_monte_carlo(
                args.dim, deltas, thetas, seed=args.seed
            )
        else:
            catalog = BFCatalog.build_analytic(args.dim, deltas, thetas)
    save_catalog(catalog, args.output)
    print(f"wrote {args.kind} catalog ({len(catalog)} entries, "
          f"dim={args.dim}) to {args.output}")
    return 0


def _cmd_dataset(args) -> int:
    from repro.datasets import color_moments_like, long_beach_like, uniform_points

    if args.kind == "road":
        size = args.size or 50_747
        points = long_beach_like(size, seed=args.seed).midpoints
    elif args.kind == "corel":
        size = args.size or 68_040
        points = color_moments_like(size, seed=args.seed)
    else:
        size = args.size or 10_000
        points = uniform_points(size, args.dim, seed=args.seed)
    if args.format == "soa":
        from repro.core.storage import write_soa

        write_soa(args.output, np.arange(points.shape[0]), points)
    else:
        np.savez_compressed(
            args.output, ids=np.arange(points.shape[0]), points=points
        )
    print(f"wrote {points.shape[0]} x {points.shape[1]} {args.kind} points "
          f"to {args.output}")
    return 0


def _cmd_kernels(args) -> int:
    from repro import kernels
    from repro.kernels.build import cache_dir

    print(f"backend: {kernels.backend()}")
    print(f"cache:   {cache_dir()}")
    for row in kernels.kernel_table():
        print(f"  {row['kernel']:36s} {row['backend']}")
    return 0


def _cmd_experiment(args) -> int:
    from repro.bench import experiments

    if args.name == "all":
        from repro.bench.report import run_full_report

        report = run_full_report(n_trials=args.trials, n_samples=args.samples)
        print(report)
        if args.output:
            from pathlib import Path

            Path(args.output).write_text(report + "\n")
            print(f"\nwrote {args.output}")
        return 0
    if args.name == "table1":
        result = experiments.run_strategy_grid(
            n_trials=args.trials, n_samples=args.samples
        )
        print(result.table_time().render())
    elif args.name == "table2":
        result = experiments.run_candidate_grid(n_trials=args.trials)
        print(result.table_candidates().render())
    elif args.name == "table3":
        print(experiments.run_table3(n_trials=args.trials).render())
    elif args.name == "regions":
        print(experiments.run_region_tables().render())
    elif args.name == "fig17":
        table, _ = experiments.run_fig17()
        print(table.render())
    elif args.name == "sensitivity-delta":
        print(experiments.run_sensitivity_delta(n_trials=args.trials).render())
    elif args.name == "sensitivity-theta":
        print(experiments.run_sensitivity_theta(n_trials=args.trials).render())
    elif args.name == "sensitivity-shape":
        print(experiments.run_sensitivity_shape(n_trials=args.trials).render())
    elif args.name == "ablation-em":
        print(experiments.run_ablation_em_strategy(n_trials=args.trials).render())
    elif args.name == "ablation-sequential":
        print(experiments.run_ablation_sequential(n_trials=args.trials).render())
    else:
        print(experiments.run_3d_fringe_extension(n_trials=args.trials).render())
    return 0


def _cmd_figures(args) -> int:
    from pathlib import Path

    from repro.datasets.roadnet import long_beach_like
    from repro.viz import (
        render_radial_figure,
        render_regions_figure,
        render_road_network,
    )

    target = Path(args.output_dir)
    target.mkdir(parents=True, exist_ok=True)
    written = []
    for gamma, name in ((10.0, "fig13_14"), (1.0, "fig15"), (100.0, "fig16")):
        written.append(render_regions_figure(gamma).save(target / f"{name}.svg"))
    written.append(render_radial_figure().save(target / "fig17.svg"))
    network = long_beach_like(15_000, seed=0)
    written.append(
        render_road_network(network.midpoints).save(target / "road_network.svg")
    )
    for path in written:
        print(f"wrote {path}")
    return 0


def _parse_serve_request(spec: dict, dim: int, line_no: int, seed: int = 0):
    """Build one PRQRequest from a JSON-lines spec (raises ValueError)."""
    from repro.serve import PRQRequest

    query = _query_from_spec(spec, dim, seed=seed)
    deadline = spec.get("deadline_ms")
    deadline = None if deadline is None else float(deadline) / 1e3
    priority = int(spec.get("priority", 0))
    request_id = spec.get("id", line_no)
    if getattr(query, "kind", "prq") != "prq":
        return PRQRequest.from_query(
            query, deadline=deadline, priority=priority,
            request_id=request_id,
        )
    return PRQRequest(
        query.gaussian, query.delta, query.theta,
        deadline=deadline, priority=priority, request_id=request_id,
    )


def _parse_monitor_request(spec: dict, dim: int, line_no: int):
    """Build one MonitorRequest from a JSON-lines spec (raises on misuse).

    Monitor lines carry ``"type"`` (subscribe/update/unsubscribe/notify)
    and address their subscription through ``"sub"``; subscribe lines
    additionally take the usual query fields (center/sigma/sigma_scale/
    delta/theta).
    """
    from repro import Gaussian
    from repro.serve import MonitorRequest, REQUEST_SUBSCRIBE, REQUEST_UPDATE

    request_type = spec["type"]
    request_id = spec.get("id", line_no)
    sub = spec.get("sub")
    deadline = spec.get("deadline_ms")
    deadline = None if deadline is None else float(deadline) / 1e3
    if request_type == REQUEST_SUBSCRIBE:
        center = np.asarray(spec["center"], dtype=float)
        if "sigma" in spec:
            sigma = np.asarray(spec["sigma"], dtype=float)
        else:
            sigma = float(spec.get("sigma_scale", 1.0)) * np.eye(dim)
        return MonitorRequest.subscribe(
            Gaussian(center, sigma),
            float(spec["delta"]),
            float(spec["theta"]),
            subscription_id=sub,
            request_id=request_id,
        )
    if sub is None:
        raise ValueError(f'"{request_type}" line needs "sub"')
    if request_type == REQUEST_UPDATE:
        sigma = spec.get("sigma")
        return MonitorRequest.update(
            sub,
            np.asarray(spec["center"], dtype=float),
            None if sigma is None else np.asarray(sigma, dtype=float),
            deadline=deadline,
            request_id=request_id,
        )
    return MonitorRequest(
        request_type, subscription_id=sub, request_id=request_id
    )


def _cmd_serve(args) -> int:
    import json
    from pathlib import Path

    from repro.errors import ReproError
    from repro.serve import REQUEST_TYPES, STATUS_FAILED

    db = _load_database(args.database)
    if args.target_sigma_scale is not None:
        db = _with_target_table(db, args.target_sigma_scale)
    if args.requests == "-":
        lines = sys.stdin.read().splitlines()
    else:
        try:
            lines = Path(args.requests).read_text().splitlines()
        except OSError as exc:
            print(f"error: cannot read requests from {args.requests}: {exc}",
                  file=sys.stderr)
            return 2
    obs = _make_obs(args)
    integrator = _make_integrator(args.integrator, None, args.seed)
    service = db.serve(
        max_queue=args.queue_size,
        max_batch=args.max_batch,
        batch_window=args.window_ms / 1e3,
        workers=args.workers,
        strategies=args.strategies,
        integrator=integrator,
        cache_size=args.cache_size,
        degrade=not args.no_degrade,
        obs=obs,
    )
    # Each handle is either a response future or, for a malformed line,
    # the ready-made failure row — output stays one line per request, in
    # submission order, and a bad line never kills the service.  Monitor
    # lines (a "type" of subscribe/update/unsubscribe/notify) execute
    # synchronously at submission, so a later update always sees the
    # effect of every earlier line on its subscription.
    handles = []
    with service:
        for line_no, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                spec = json.loads(line)
                if "type" in spec:
                    if spec["type"] not in REQUEST_TYPES:
                        raise ValueError(
                            f"unknown request type {spec['type']!r}; "
                            f"expected one of {REQUEST_TYPES}"
                        )
                    request = _parse_monitor_request(spec, db.dim, line_no)
                    handles.append(service.monitor.handle(request).to_dict())
                    continue
                request = _parse_serve_request(spec, db.dim, line_no, args.seed)
            except (KeyError, TypeError, ValueError, ReproError) as exc:
                handles.append({"id": line_no, "status": STATUS_FAILED,
                                "error": f"bad request: {exc}"})
                continue
            handles.append(service.submit(request))
        for handle in handles:
            row = handle if isinstance(handle, dict) else (
                handle.result().to_dict()
            )
            print(json.dumps(row), flush=True)
    print("summary:", json.dumps(service.stats()), file=sys.stderr)
    monitor_stats = service.monitor.stats()
    if monitor_stats["subscribed"] or monitor_stats["updates"]:
        print("monitor:", json.dumps(monitor_stats), file=sys.stderr)
    # stdout is the response stream, so export notices go to stderr.
    if obs is not None:
        if args.trace_out is not None:
            count = obs.export_trace(args.trace_out)
            print(f"wrote {count} spans to {args.trace_out}", file=sys.stderr)
        if args.metrics_out is not None:
            Path(args.metrics_out).write_text(obs.render_metrics())
            print(f"wrote metrics to {args.metrics_out}", file=sys.stderr)
    return 0


def _cmd_monitor(args) -> int:
    """A self-contained fleet-monitoring demonstration.

    Registers a fleet of standing subscriptions, drives them along
    random-walk trajectories, and reports the survive/re-integrate/
    re-plan outcome mix plus update throughput — the working model for
    the safe-region machinery behind ``docs/monitoring.md``.
    """
    import time

    from repro import Gaussian
    from repro.integrate import CascadeIntegrator
    from repro.serve import SubscriptionManager

    db = _load_database(args.database)
    points = np.asarray(db.points)
    lows, highs = points.min(axis=0), points.max(axis=0)
    extent = float(np.max(highs - lows))
    delta = args.delta if args.delta is not None else 0.02 * extent
    step_sd = args.step_sd if args.step_sd is not None else 0.001 * extent
    sigma_scale = (
        args.sigma_scale if args.sigma_scale is not None else (delta / 8.0) ** 2
    )
    deadline = None if args.deadline_ms is None else args.deadline_ms / 1e3
    obs = _make_obs(args)
    engine = db.engine(integrator=CascadeIntegrator(), obs=obs)
    monitor = SubscriptionManager(db, engine, obs=obs)
    rng = np.random.default_rng(args.seed)
    sigma = sigma_scale * np.eye(db.dim)
    positions = rng.uniform(lows, highs, size=(args.subscriptions, db.dim))
    print(f"database: {len(db)} points, extent {extent:g}")
    print(f"fleet: {args.subscriptions} subscriptions, delta={delta:g}, "
          f"theta={args.theta:g}, sigma={sigma_scale:g}*I, "
          f"step sd={step_sd:g}")
    started = time.perf_counter()
    for key in range(args.subscriptions):
        response = monitor.subscribe(
            Gaussian(positions[key], sigma), delta, args.theta,
            subscription_id=key,
        )
        if response.status != "ok":
            print(f"error: subscribe {key} failed: {response.error}",
                  file=sys.stderr)
            return 2
    subscribe_seconds = time.perf_counter() - started
    started = time.perf_counter()
    updates = 0
    for _step in range(args.steps):
        positions += rng.normal(0.0, step_sd, size=positions.shape)
        np.clip(positions, lows, highs, out=positions)
        for key in range(args.subscriptions):
            monitor.update(key, positions[key], deadline=deadline)
            updates += 1
    update_seconds = time.perf_counter() - started
    stats = monitor.stats()
    print(f"\nsubscribed {args.subscriptions} queries in "
          f"{subscribe_seconds:.2f}s; "
          f"ran {updates} updates in {update_seconds:.2f}s "
          f"({updates / update_seconds:,.0f} updates/s)")
    print(f"{'outcome':>14} {'count':>8} {'share':>7}")
    for outcome in ("survived", "reintegrated", "replanned", "degraded"):
        count = stats[outcome]
        print(f"{outcome:>14} {count:>8} {count / max(updates, 1):>6.1%}")
    print(f"\nrechecked candidates: {stats['rechecked_candidates']} "
          f"({stats['rechecked_candidates'] / max(updates, 1):.1f}/update)")
    if obs is not None:
        if args.trace_out is not None:
            count = obs.export_trace(args.trace_out)
            print(f"wrote {count} spans to {args.trace_out}", file=sys.stderr)
        if args.metrics_out is not None:
            from pathlib import Path

            Path(args.metrics_out).write_text(obs.render_metrics())
            print(f"wrote metrics to {args.metrics_out}", file=sys.stderr)
    return 0


def _cmd_load(args) -> int:
    import json
    from dataclasses import replace
    from pathlib import Path

    from repro.errors import LoadError
    from repro.load import (
        SCENARIOS,
        CapacityReport,
        SaturationSweep,
        ScenarioSpec,
        VirtualCostModel,
    )

    db = _load_database(args.database)
    if args.scenario in SCENARIOS:
        spec = SCENARIOS[args.scenario]
    else:
        path = Path(args.scenario)
        if not path.exists():
            print(
                f"error: --scenario {args.scenario!r} is neither a built-in "
                f"({', '.join(sorted(SCENARIOS))}) nor a JSON spec file",
                file=sys.stderr,
            )
            return 2
        try:
            spec = ScenarioSpec.from_dict(json.loads(path.read_text()))
        except (LoadError, json.JSONDecodeError, TypeError) as exc:
            print(f"error: bad scenario file {path}: {exc}", file=sys.stderr)
            return 2
    if args.seed is not None:
        spec = replace(spec, seed=args.seed)
    virtual = not args.real
    cost_model = None
    if virtual:
        try:
            cost_model = VirtualCostModel(
                seconds_per_query=args.cost_ms / 1e3,
                batch_overhead=args.batch_overhead_ms / 1e3,
                parallelism=args.parallelism,
            )
        except LoadError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    service_knobs = {
        "max_batch": args.max_batch,
        "batch_window": args.window_ms / 1e3,
        "max_queue": args.queue_size,
        "workers": args.workers,
        "cache_size": args.cache_size,
    }
    if args.sweep:
        if args.rates is not None:
            try:
                rates = [float(token) for token in args.rates.split(",")]
            except ValueError:
                print(f"error: bad --rates {args.rates!r}", file=sys.stderr)
                return 2
        else:
            # A geometric ladder around the modelled (or guessed)
            # single-instance capacity, crossing the knee on both sides.
            base = (
                cost_model.parallelism / cost_model.seconds_per_query
                if cost_model is not None
                else 500.0
            )
            rates = [base * factor for factor in
                     (0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0)]
        try:
            sweep = SaturationSweep(
                db, spec, rates=rates, duration=args.duration,
                virtual=virtual, cost_model=cost_model,
                service_knobs=service_knobs,
                shed_threshold=args.shed_threshold,
            )
            report = sweep.run()
        except LoadError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"scenario {spec.name!r} "
              f"({'virtual' if virtual else 'real'} mode, "
              f"{args.duration:g}s per step)")
        header = (f"{'offered':>9} {'goodput':>9} {'shed':>7} {'degr':>7} "
                  f"{'expired':>7} {'p50ms':>9} {'p99ms':>9}")
        print(header)
        for step in report.steps:
            print(f"{step['offered_qps']:>9.1f} {step['goodput_qps']:>9.1f} "
                  f"{step['shed_rate']:>7.3f} {step['degraded_rate']:>7.3f} "
                  f"{step['deadline_exceeded_rate']:>7.3f} "
                  f"{step['latency_ms']['p50']:>9.2f} "
                  f"{step['latency_ms']['p99']:>9.2f}")
        knee = report.knee
        if knee["saturated"]:
            print(f"knee at ~{knee['knee_qps']:.1f} req/s "
                  f"(shed > {knee['shed_threshold']:g}); "
                  f"capacity {knee['capacity_qps']:.1f} req/s")
        else:
            print(f"no knee found up to {report.steps[-1]['offered_qps']:g} "
                  f"req/s; max goodput {knee['capacity_qps']:.1f} req/s")
        out = args.out if args.out is not None else "BENCH_capacity.json"
        report.write(out)
        print(f"wrote capacity report to {out}")
        if args.check_against is not None:
            try:
                baseline = CapacityReport.load(args.check_against)
                gate = report.compare(baseline, tolerance=args.tolerance)
            except LoadError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            print(gate.summary())
            if not gate.passed:
                return 1
        return 0
    if args.rate is None:
        print("error: pass --rate R for a single run or --sweep for a "
              "saturation sweep", file=sys.stderr)
        return 2
    try:
        sweep = SaturationSweep(
            db, spec, rates=[args.rate], duration=args.duration,
            virtual=virtual, cost_model=cost_model,
            service_knobs=service_knobs,
            shed_threshold=args.shed_threshold,
        )
        run = sweep.run_step(args.rate)
    except LoadError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    payload = json.dumps(run.to_dict(), indent=2, sort_keys=True)
    print(payload)
    if args.out is not None:
        Path(args.out).write_text(payload + "\n")
        print(f"wrote run report to {args.out}", file=sys.stderr)
    return 0


def _cmd_trace(args) -> int:
    from repro.obs.render import render_trace, summarize_trace
    from repro.obs.tracer import Tracer

    try:
        spans = Tracer.load_jsonl(args.file)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot read trace {args.file}: {exc}", file=sys.stderr)
        return 2
    if not args.summary_only:
        print(render_trace(spans, min_ms=args.min_ms, max_spans=args.max_spans))
        print()
    print(summarize_trace(spans))
    return 0


_COMMANDS = {
    "demo": _cmd_demo,
    "query": _cmd_query,
    "explain": _cmd_explain,
    "catalog": _cmd_catalog,
    "dataset": _cmd_dataset,
    "kernels": _cmd_kernels,
    "experiment": _cmd_experiment,
    "figures": _cmd_figures,
    "serve": _cmd_serve,
    "monitor": _cmd_monitor,
    "load": _cmd_load,
    "trace": _cmd_trace,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())

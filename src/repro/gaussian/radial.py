"""Radial mass functions of the normalized Gaussian.

Two closed forms replace the paper's purely numerical table construction
(they are also used to *build* those tables; see :mod:`repro.catalog`):

1. The mass of N(0, I_d) inside the origin-centred ball of radius r is the
   χ_d CDF:  P(‖Z‖ ≤ r) = P(χ²_d ≤ r²) = γ(d/2, r²/2)/Γ(d/2).
   Inverting it gives r_θ (Definition 5 / Eq. 7) directly.

2. The mass of N(0, I_d) inside a ball of radius δ whose centre sits at
   distance α from the origin is the noncentral-χ² CDF
   P(χ²_d(α²) ≤ δ²) — exactly the integral of Eq. 21, so the BF catalog
   entry α(δ, θ) is a one-dimensional root-finding problem.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import optimize, special, stats

from repro.errors import GeometryError, IntegrationError

__all__ = [
    "radial_cdf",
    "radial_ppf",
    "r_theta",
    "offset_sphere_mass",
    "alpha_for_mass",
]


def _check_dim(dim: int) -> None:
    if not isinstance(dim, (int, np.integer)) or dim < 1:
        raise GeometryError(f"dimension must be a positive integer, got {dim!r}")


def radial_cdf(dim: int, radius: float | np.ndarray) -> float | np.ndarray:
    """Mass of the normalized Gaussian inside the ball of radius ``radius``.

    Vectorised over ``radius``.  This is the curve family plotted in
    Fig. 17 of the paper (one curve per dimension).
    """
    _check_dim(dim)
    r = np.asarray(radius, dtype=float)
    if np.any(r < 0):
        raise GeometryError(f"radius must be >= 0, got {radius}")
    out = special.gammainc(dim / 2.0, r * r / 2.0)
    return float(out) if np.isscalar(radius) else out


def radial_ppf(dim: int, mass: float) -> float:
    """Radius of the origin-centred ball holding probability ``mass``."""
    _check_dim(dim)
    if not 0.0 <= mass < 1.0:
        raise GeometryError(f"mass must be in [0, 1), got {mass}")
    if mass == 0.0:
        return 0.0
    return float(math.sqrt(2.0 * special.gammaincinv(dim / 2.0, mass)))


def r_theta(dim: int, theta: float) -> float:
    """The θ-region radius r_θ of Definition 5: mass(r_θ) = 1 − 2θ.

    Requires 0 < θ < 1/2 (the paper's constraint; at θ = 1/2 the region
    degenerates to the centre point).
    """
    if not 0.0 < theta < 0.5:
        raise GeometryError(f"theta must satisfy 0 < theta < 1/2, got {theta}")
    return radial_ppf(dim, 1.0 - 2.0 * theta)


def offset_sphere_mass(dim: int, delta: float, alpha: float) -> float:
    """Mass of N(0, I_d) in the δ-ball whose centre is at distance α.

    This is the left side of Eq. 21 with the sphere translated by α, and
    equals the noncentral-χ² CDF P(χ²_d(λ = α²) ≤ δ²).
    """
    _check_dim(dim)
    if delta < 0 or alpha < 0:
        raise GeometryError(f"delta and alpha must be >= 0, got {delta}, {alpha}")
    if delta == 0.0:
        return 0.0
    if alpha == 0.0:
        return radial_cdf(dim, delta)
    value = float(stats.ncx2.cdf(delta * delta, df=dim, nc=alpha * alpha))
    if math.isnan(value):
        # Extreme noncentralities overflow scipy's series; fall back to the
        # normal approximation chi'2_d(nc) ~ N(d + nc, 2(d + 2 nc)), which
        # is excellent in exactly that regime.
        nc = alpha * alpha
        mean = dim + nc
        std = math.sqrt(2.0 * (dim + 2.0 * nc))
        value = float(stats.norm.cdf((delta * delta - mean) / std))
    return value


def alpha_for_mass(dim: int, delta: float, theta: float) -> float | None:
    """Solve Eq. 21 for α: the centre offset at which the δ-ball holds mass θ.

    The mass is strictly decreasing in α, from ``radial_cdf(dim, delta)`` at
    α = 0 towards 0.  Returns ``None`` when even the origin-centred ball
    holds less than θ — the situation Section VI describes for ill-shaped
    high-dimensional Gaussians where no inner "hole" exists (for the α⊥
    lookup) or no object can qualify (for the α∥ lookup).
    """
    _check_dim(dim)
    if delta <= 0:
        raise GeometryError(f"delta must be > 0, got {delta}")
    if not 0.0 < theta < 1.0:
        raise GeometryError(f"theta must be in (0, 1), got {theta}")
    mass_at_origin = radial_cdf(dim, delta)
    if mass_at_origin < theta:
        return None
    if mass_at_origin == theta:
        return 0.0

    def deficit(alpha: float) -> float:
        return offset_sphere_mass(dim, delta, alpha) - theta

    # Bracket: grow the upper bound until the mass falls below theta.  The
    # mass at offset alpha decays like exp(-(alpha-delta)^2/2), so a few
    # doublings always suffice.
    hi = delta + 1.0
    for _ in range(200):
        if deficit(hi) < 0.0:
            break
        hi *= 2.0
    else:  # pragma: no cover - defensive; mass provably reaches 0
        raise IntegrationError(
            f"could not bracket alpha for dim={dim}, delta={delta}, theta={theta}"
        )
    return float(optimize.brentq(deficit, 0.0, hi, xtol=1e-12, rtol=1e-12))

"""The d-dimensional Gaussian query-object distribution (Definition 1).

``Gaussian`` wraps a mean vector q and covariance Σ, caches the spectral
decomposition, and exposes everything the strategies consume:

- density evaluation (Eq. 1) and exact sampling;
- the θ-region ellipsoid at a given Mahalanobis radius;
- the bounding-function parameters of Definition 6 — the paper decomposes
  Σ⁻¹ and takes λ∥ = min λᵢ(Σ⁻¹), λ⊥ = max λᵢ(Σ⁻¹), so in Σ-eigenvalue
  terms λ∥ = 1/λ_max(Σ) and λ⊥ = 1/λ_min(Σ);
- convolution/shift algebra used by the both-sides-uncertain extension.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import DimensionMismatchError, GeometryError
from repro.geometry.ellipsoid import Ellipsoid
from repro.geometry.transforms import WhiteningTransform, spectral_decomposition

__all__ = ["Gaussian"]

_ArrayLike = Sequence[float] | np.ndarray

_LOG_2PI = math.log(2.0 * math.pi)


class Gaussian:
    """An immutable multivariate normal distribution N(mean, sigma).

    Parameters
    ----------
    mean:
        Centre q of the distribution (the reported location of the query
        object).
    sigma:
        Symmetric positive-definite covariance matrix Σ.
    """

    __slots__ = (
        "_mean",
        "_sigma",
        "_eigenvalues",
        "_basis",
        "_whitening",
        "_log_det",
    )

    def __init__(self, mean: _ArrayLike, sigma: np.ndarray):
        mean_vec = np.asarray(mean, dtype=float)
        if mean_vec.ndim != 1 or mean_vec.size == 0:
            raise GeometryError(f"mean must be 1-D, got shape {mean_vec.shape}")
        eigenvalues, basis = spectral_decomposition(sigma)
        if mean_vec.size != eigenvalues.size:
            raise DimensionMismatchError(eigenvalues.size, mean_vec.size, "mean")
        sigma_arr = np.asarray(sigma, dtype=float).copy()
        mean_vec = mean_vec.copy()
        mean_vec.setflags(write=False)
        sigma_arr.setflags(write=False)
        self._mean = mean_vec
        self._sigma = sigma_arr
        self._eigenvalues = eigenvalues
        self._basis = basis
        self._whitening = WhiteningTransform(mean_vec, sigma_arr)
        self._log_det = float(np.sum(np.log(eigenvalues)))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def isotropic(cls, mean: _ArrayLike, variance: float) -> "Gaussian":
        """Spherical Gaussian N(mean, variance·I)."""
        mean_vec = np.asarray(mean, dtype=float)
        if variance <= 0:
            raise GeometryError(f"variance must be > 0, got {variance}")
        return cls(mean_vec, variance * np.eye(mean_vec.size))

    @classmethod
    def standard(cls, dim: int) -> "Gaussian":
        """The normalized Gaussian p_norm of Definition 4: N(0, I)."""
        return cls(np.zeros(dim), np.eye(dim))

    @classmethod
    def from_samples(
        cls, samples: np.ndarray, ridge: float = 0.0
    ) -> "Gaussian":
        """Maximum-likelihood fit with an optional ridge κ·I on the covariance.

        The 9-D pseudo-feedback experiment of Section VI builds Σ = Σ̃ + κI
        from k-NN sample vectors; pass the κ there via ``ridge``.
        """
        pts = np.asarray(samples, dtype=float)
        if pts.ndim != 2 or pts.shape[0] < 2:
            raise GeometryError(
                f"need a 2-D array with >= 2 sample rows, got shape {pts.shape}"
            )
        mean = pts.mean(axis=0)
        centred = pts - mean
        cov = centred.T @ centred / pts.shape[0]
        if ridge < 0:
            raise GeometryError(f"ridge must be >= 0, got {ridge}")
        return cls(mean, cov + ridge * np.eye(pts.shape[1]))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def mean(self) -> np.ndarray:
        return self._mean

    @property
    def sigma(self) -> np.ndarray:
        return self._sigma

    @property
    def dim(self) -> int:
        return self._mean.size

    @property
    def eigenvalues(self) -> np.ndarray:
        """Eigenvalues of Σ, descending."""
        return self._eigenvalues

    @property
    def basis(self) -> np.ndarray:
        """Eigenvector matrix E of Σ (columns, matching ``eigenvalues``)."""
        return self._basis

    @property
    def whitening(self) -> WhiteningTransform:
        return self._whitening

    @property
    def det_sigma(self) -> float:
        return math.exp(self._log_det)

    @property
    def log_det_sigma(self) -> float:
        return self._log_det

    @property
    def marginal_stds(self) -> np.ndarray:
        """σᵢ = √(Σ)ᵢᵢ — the box half-width scale of Property 2."""
        return np.sqrt(np.diag(self._sigma))

    @property
    def lam_parallel(self) -> float:
        """λ∥ of Eq. 9: the smallest eigenvalue of Σ⁻¹ (flattest direction)."""
        return 1.0 / float(self._eigenvalues[0])

    @property
    def lam_perp(self) -> float:
        """λ⊥ of Eq. 10: the largest eigenvalue of Σ⁻¹ (steepest direction)."""
        return 1.0 / float(self._eigenvalues[-1])

    @property
    def condition_number(self) -> float:
        """λ_max(Σ)/λ_min(Σ) — how far from spherical the distribution is."""
        return float(self._eigenvalues[0] / self._eigenvalues[-1])

    # ------------------------------------------------------------------
    # Density and sampling
    # ------------------------------------------------------------------

    def log_pdf(self, points: np.ndarray) -> np.ndarray:
        """Log density at each row of ``points`` (Eq. 1)."""
        z = self._whitening.whiten(points)
        quad = np.einsum("ij,ij->i", z, z)
        return -0.5 * (quad + self.dim * _LOG_2PI + self._log_det)

    def pdf(self, points: np.ndarray) -> np.ndarray:
        return np.exp(self.log_pdf(points))

    def bounding_log_pdf(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Log of the bounding functions (p∥, p⊥) of Definition 6 at ``points``.

        Both share the normalizing constant of p_q but use the isotropic
        exponents λ∥ and λ⊥; p⊥ ≤ p ≤ p∥ pointwise (Property 4).
        """
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        deltas = pts - self._mean
        sq = np.einsum("ij,ij->i", deltas, deltas)
        log_const = -0.5 * (self.dim * _LOG_2PI + self._log_det)
        return (
            log_const - 0.5 * self.lam_parallel * sq,
            log_const - 0.5 * self.lam_perp * sq,
        )

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Exact samples via the eigendecomposition (no Cholesky needed)."""
        z = rng.standard_normal((n, self.dim))
        return self._whitening.unwhiten(z)

    def mahalanobis(self, points: np.ndarray) -> np.ndarray:
        return self._whitening.mahalanobis(points)

    # ------------------------------------------------------------------
    # Derived shapes
    # ------------------------------------------------------------------

    def contour(self, radius: float) -> Ellipsoid:
        """Equi-probability ellipsoid at Mahalanobis radius ``radius``.

        With ``radius = r_θ`` this is exactly the θ-region of Definition 3.
        """
        return Ellipsoid(self._mean, self._sigma, radius)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def shifted(self, offset: _ArrayLike) -> "Gaussian":
        """Distribution of x + offset."""
        off = np.asarray(offset, dtype=float)
        if off.shape != self._mean.shape:
            raise DimensionMismatchError(self.dim, off.size, "offset")
        return Gaussian(self._mean + off, self._sigma)

    def convolve(self, other: "Gaussian") -> "Gaussian":
        """Distribution of the sum of two independent Gaussians.

        The both-sides-uncertain extension rests on this: if the query is
        N(q, Σ_q) and a target is N(o, Σ_o), the displacement x − y is
        N(q − o, Σ_q + Σ_o), so the range predicate reduces to the
        single-sided machinery.
        """
        if other.dim != self.dim:
            raise DimensionMismatchError(self.dim, other.dim, "other")
        return Gaussian(self._mean + other._mean, self._sigma + other._sigma)

    def marginal(self, dims: Sequence[int]) -> "Gaussian":
        """Marginal distribution over a subset of dimensions.

        For a Gaussian, marginalization just selects the matching rows and
        columns of the mean and covariance.
        """
        idx = self._validate_dims(dims)
        return Gaussian(self._mean[idx], self._sigma[np.ix_(idx, idx)])

    def condition(self, dims: Sequence[int], values: _ArrayLike) -> "Gaussian":
        """Distribution of the remaining dimensions given observed ones.

        Standard Gaussian conditioning: with the partition (a = unobserved,
        b = observed), x_a | x_b = v is Gaussian with mean
        μ_a + Σ_ab Σ_bb⁻¹ (v − μ_b) and covariance Σ_aa − Σ_ab Σ_bb⁻¹ Σ_ba.
        """
        observed = self._validate_dims(dims)
        v = np.asarray(values, dtype=float)
        if v.shape != (observed.size,):
            raise DimensionMismatchError(observed.size, v.size, "values")
        free = np.array(
            [i for i in range(self.dim) if i not in set(observed.tolist())]
        )
        if free.size == 0:
            raise GeometryError("cannot condition on every dimension")
        sigma_aa = self._sigma[np.ix_(free, free)]
        sigma_ab = self._sigma[np.ix_(free, observed)]
        sigma_bb = self._sigma[np.ix_(observed, observed)]
        gain = sigma_ab @ np.linalg.inv(sigma_bb)
        mean = self._mean[free] + gain @ (v - self._mean[observed])
        cov = sigma_aa - gain @ sigma_ab.T
        # Symmetrize against numerical drift before validation.
        return Gaussian(mean, (cov + cov.T) / 2.0)

    def _validate_dims(self, dims: Sequence[int]) -> np.ndarray:
        idx = np.asarray(list(dims), dtype=int)
        if idx.ndim != 1 or idx.size == 0:
            raise GeometryError("dims must be a non-empty sequence of axes")
        if len(set(idx.tolist())) != idx.size:
            raise GeometryError(f"dims contains duplicates: {idx.tolist()}")
        if np.any(idx < 0) or np.any(idx >= self.dim):
            raise GeometryError(
                f"dims must lie in [0, {self.dim}), got {idx.tolist()}"
            )
        return idx

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Gaussian):
            return NotImplemented
        return bool(
            np.array_equal(self._mean, other._mean)
            and np.array_equal(self._sigma, other._sigma)
        )

    def __hash__(self) -> int:
        return hash((self._mean.tobytes(), self._sigma.tobytes()))

    def __repr__(self) -> str:
        return (
            f"Gaussian(dim={self.dim}, mean={np.round(self._mean, 4).tolist()}, "
            f"eigenvalues={np.round(self._eigenvalues, 4).tolist()})"
        )

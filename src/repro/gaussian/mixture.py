"""Gaussian mixture query objects (multi-hypothesis location beliefs).

Probabilistic localization often yields *multi-modal* beliefs (e.g. a
robot unsure which of two corridors it is in).  A Gaussian mixture
``Σᵢ wᵢ · N(qᵢ, Σᵢ)`` models this, and the paper's range predicate
generalizes linearly:

    P(‖x − o‖ <= δ)  =  Σᵢ wᵢ · Pᵢ(‖x − o‖ <= δ),

one quadratic-form CDF per component.  Filtering also reduces cleanly:
since Σwᵢ = 1, the mixture probability is at most max_i Pᵢ, so an object
qualifying at threshold θ must qualify the *single-component* query of at
least one component — the sound Phase-1/2 reduction implemented by
:class:`repro.core.kinds.MixtureFilterStrategy` inside the unified stage
pipeline (build a :class:`repro.core.kinds.MixtureRangeQuery`, or use the
:class:`repro.core.mixture.MixtureQueryEngine` convenience wrapper).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import GeometryError
from repro.gaussian.distribution import Gaussian
from repro.gaussian.quadform import qualification_probability_exact

__all__ = ["GaussianMixture"]


class GaussianMixture:
    """An immutable finite mixture of Gaussians with positive weights."""

    __slots__ = ("_components", "_weights")

    def __init__(self, components: Sequence[Gaussian], weights=None):
        comps = list(components)
        if not comps:
            raise GeometryError("mixture needs at least one component")
        dims = {c.dim for c in comps}
        if len(dims) != 1:
            raise GeometryError(f"components have mixed dimensions {sorted(dims)}")
        if weights is None:
            w = np.full(len(comps), 1.0 / len(comps))
        else:
            w = np.asarray(weights, dtype=float)
            if w.shape != (len(comps),):
                raise GeometryError(
                    f"{len(comps)} components but weight shape {w.shape}"
                )
            if np.any(w <= 0) or not np.all(np.isfinite(w)):
                raise GeometryError(f"weights must be positive finite, got {w}")
            w = w / w.sum()
        w.setflags(write=False)
        self._components = tuple(comps)
        self._weights = w

    @property
    def components(self) -> tuple[Gaussian, ...]:
        return self._components

    @property
    def weights(self) -> np.ndarray:
        return self._weights

    @property
    def dim(self) -> int:
        return self._components[0].dim

    def __len__(self) -> int:
        return len(self._components)

    # ------------------------------------------------------------------
    # Moments and density
    # ------------------------------------------------------------------

    def mean(self) -> np.ndarray:
        return np.sum(
            [w * c.mean for w, c in zip(self._weights, self._components)], axis=0
        )

    def covariance(self) -> np.ndarray:
        """Total covariance: Σ wᵢ (Σᵢ + μᵢμᵢᵀ) − μμᵀ."""
        mu = self.mean()
        total = -np.outer(mu, mu)
        for w, c in zip(self._weights, self._components):
            total = total + w * (c.sigma + np.outer(c.mean, c.mean))
        return total

    def pdf(self, points: np.ndarray) -> np.ndarray:
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        out = np.zeros(pts.shape[0])
        for w, c in zip(self._weights, self._components):
            out += w * c.pdf(pts)
        return out

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        counts = rng.multinomial(n, self._weights)
        blocks = [
            c.sample(int(count), rng)
            for c, count in zip(self._components, counts)
            if count
        ]
        samples = np.vstack(blocks)
        rng.shuffle(samples)
        return samples

    # ------------------------------------------------------------------
    # Range predicate
    # ------------------------------------------------------------------

    def qualification_probability(self, point, delta: float) -> float:
        """Exact P(‖x − point‖ <= delta), one Imhof/Ruben call per component."""
        p = np.asarray(point, dtype=float)
        return float(
            sum(
                w * qualification_probability_exact(c, p, delta, method="ruben")
                for w, c in zip(self._weights, self._components)
            )
        )

    def __repr__(self) -> str:
        return (
            f"GaussianMixture(k={len(self)}, dim={self.dim}, "
            f"weights={np.round(self._weights, 3).tolist()})"
        )

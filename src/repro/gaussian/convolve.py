"""Convolved-Gaussian reach bounds for uncertain-target queries.

When the query location is x ~ N(q, Σ_q) and a target's location is
y ~ N(o, Σ_o) with x ⊥ y, the displacement x − y is N(q − o, Σ_q + Σ_o),
so

    P(‖x − y‖ <= δ)  =  P(‖z − o‖ <= δ)  for z ~ N(q, Σ_q + Σ_o)

— the two-sided problem collapses to the paper's one-sided machinery with
a per-target covariance.  This module owns the *conservative* Phase-1
reach bound shared by every uncertain-target code path: the radius α such
that any target mean farther than α from q provably fails the threshold θ
under its convolved Gaussian, for *any* target covariance whose largest
eigenvalue is at most ``max_target_eig``.

The bound follows the paper's Eq. 29 bounding-function argument with the
convolved principal eigenvalue λ∥ = 1 / (λ_max(Σ_q) + max_target_eig):
the convolved density is everywhere dominated by the isotropic bounding
function with that eigenvalue, and because det(Σ_q + Σ_o) >= det(Σ_q) the
scaled threshold built from det(Σ_q) alone is smaller — hence safer
(a smaller θ gives a larger α).
"""

from __future__ import annotations

import math

from repro.errors import QueryError
from repro.gaussian.distribution import Gaussian
from repro.gaussian.radial import alpha_for_mass

__all__ = ["conservative_reach_alpha"]


def conservative_reach_alpha(
    gaussian: Gaussian,
    delta: float,
    theta: float,
    max_target_eig: float,
) -> float | None:
    """Conservative qualification radius under target-covariance convolution.

    Parameters
    ----------
    gaussian:
        The query object's distribution N(q, Σ_q).
    delta, theta:
        The PRQ distance bound and probability threshold.
    max_target_eig:
        An upper bound on the largest eigenvalue of any target covariance
        Σ_o.  Pass ``0.0`` for exact targets (the bound then reduces to
        the paper's single-Gaussian α).

    Returns
    -------
    float | None
        α such that every target mean with ‖o − q‖ > α has qualification
        probability < θ under N(q, Σ_q + Σ_o), or ``None`` when *no*
        location can reach the threshold (the query answer is provably
        empty).
    """
    if max_target_eig < 0.0:
        raise QueryError(
            f"max_target_eig must be >= 0, got {max_target_eig}"
        )
    lam_par = 1.0 / (gaussian.eigenvalues[0] + max_target_eig)
    dim = gaussian.dim
    # det(Sigma_q + Sigma_o) >= det(Sigma_q); the scaled theta of Eq. 29
    # shrinks with a smaller determinant, and a smaller theta gives a
    # larger (safer) alpha, so use det(Sigma_q).
    sqrt_det = math.exp(0.5 * gaussian.log_det_sigma)
    scaled_theta = lam_par ** (dim / 2.0) * sqrt_det * theta
    if scaled_theta >= 1.0:
        return None
    beta = alpha_for_mass(dim, math.sqrt(lam_par) * delta, scaled_theta)
    if beta is None:
        return None
    return beta / math.sqrt(lam_par)

"""Exact CDFs of Gaussian quadratic forms.

The qualification probability of a target object o under a Gaussian query
x ~ N(q, Σ) is P(‖x − o‖² ≤ δ²).  Writing y = x − o ~ N(μ, Σ) with
μ = q − o and rotating into the eigenbasis of Σ gives

    ‖y‖² = Σᵢ λᵢ (zᵢ + bᵢ)²,   zᵢ ~ N(0, 1) i.i.d.,

with λᵢ the eigenvalues of Σ and bᵢ = (Eᵀμ)ᵢ / √λᵢ — a weighted sum of
independent noncentral χ² variables.  The paper estimates this probability
by Monte Carlo; here we additionally compute it *exactly* by two classical
methods, which serve as ground truth for the integrators and as an
optional exact Phase-3 evaluator:

- **Imhof (1961)**: numerical inversion of the characteristic function,
  robust for any weights;
- **Ruben (1962)**: a series of central χ² CDFs with a guaranteed
  truncation bound when the expansion parameter β is at most min λᵢ.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import integrate, special

from repro import kernels
from repro.errors import GeometryError, IntegrationError
from repro.gaussian.distribution import Gaussian

__all__ = [
    "GaussianQuadraticForm",
    "imhof_cdf",
    "ruben_cdf",
    "ruben_series_block",
    "chi2_sandwich_bounds",
    "chi2_sandwich_bounds_block",
    "qualification_probability_exact",
]


@dataclass(frozen=True)
class GaussianQuadraticForm:
    """Q = Σⱼ weights[j] · χ²(df[j], noncentrality[j]), independent terms.

    Attributes
    ----------
    weights:
        Positive weights λⱼ.
    dofs:
        Degrees of freedom hⱼ (positive integers).
    noncentralities:
        Noncentrality parameters δⱼ² ≥ 0 (sum of squared means).
    """

    weights: np.ndarray
    dofs: np.ndarray
    noncentralities: np.ndarray

    def __post_init__(self) -> None:
        w = np.asarray(self.weights, dtype=float)
        h = np.asarray(self.dofs, dtype=float)
        nc = np.asarray(self.noncentralities, dtype=float)
        if not (w.shape == h.shape == nc.shape) or w.ndim != 1 or w.size == 0:
            raise GeometryError(
                "weights, dofs and noncentralities must be equal-length 1-D arrays"
            )
        if np.any(w <= 0):
            raise GeometryError(f"weights must be > 0, got {w}")
        if np.any(h <= 0) or np.any(h != np.round(h)):
            raise GeometryError(f"degrees of freedom must be positive ints, got {h}")
        if np.any(nc < 0):
            raise GeometryError(f"noncentralities must be >= 0, got {nc}")
        object.__setattr__(self, "weights", w)
        object.__setattr__(self, "dofs", h)
        object.__setattr__(self, "noncentralities", nc)

    @classmethod
    def squared_distance(cls, gaussian: Gaussian, point: np.ndarray) -> (
        "GaussianQuadraticForm"
    ):
        """The form ‖x − point‖² for x ~ ``gaussian``."""
        p = np.asarray(point, dtype=float)
        if p.shape != gaussian.mean.shape:
            raise GeometryError(
                f"point shape {p.shape} does not match Gaussian dim {gaussian.dim}"
            )
        mu = gaussian.mean - p
        rotated = gaussian.basis.T @ mu
        weights = gaussian.eigenvalues
        noncentralities = rotated**2 / weights
        return cls(weights, np.ones(gaussian.dim), noncentralities)

    @staticmethod
    def squared_distance_spectrum(
        gaussian: Gaussian, points: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Shared spectrum of the forms ‖x − pointsᵢ‖² for x ~ ``gaussian``.

        All candidates of one query share the eigenvalues λ (the weights)
        and unit degrees of freedom; only the noncentralities differ.
        Returns ``(weights, noncentralities)`` with shapes ``(d,)`` and
        ``(m, d)`` — the inputs the batched evaluators fan out over.
        """
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        if pts.ndim != 2 or pts.shape[1] != gaussian.dim:
            raise GeometryError(
                f"points shape {pts.shape} does not match Gaussian dim "
                f"{gaussian.dim}"
            )
        ncs = kernels.squared_distance_noncentralities(
            gaussian.mean, gaussian.basis, gaussian.eigenvalues, pts
        )
        return gaussian.eigenvalues, ncs

    def mean(self) -> float:
        """E[Q] = Σ λⱼ (hⱼ + δⱼ²)."""
        return float(np.sum(self.weights * (self.dofs + self.noncentralities)))

    def variance(self) -> float:
        """Var[Q] = 2 Σ λⱼ² (hⱼ + 2δⱼ²)."""
        return float(
            2.0 * np.sum(self.weights**2 * (self.dofs + 2.0 * self.noncentralities))
        )

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Direct simulation of Q (used in cross-validation tests)."""
        total = np.zeros(n)
        for w, h, nc in zip(self.weights, self.dofs, self.noncentralities):
            total += w * rng.noncentral_chisquare(h, nc, size=n) if nc > 0 else (
                w * rng.chisquare(h, size=n)
            )
        return total


def imhof_cdf(form: GaussianQuadraticForm, x: float, *, tol: float = 1e-10) -> float:
    """P(Q ≤ x) by Imhof's characteristic-function inversion.

    Implements Imhof (1961), Eq. 3.2:

        P(Q > x) = 1/2 + (1/π) ∫₀^∞ sin θ(u) / (u ρ(u)) du

    with θ(u) = ½ Σⱼ [hⱼ·atan(λⱼu) + δⱼ²λⱼu/(1+λⱼ²u²)] − ½xu and
    ρ(u) = Πⱼ (1+λⱼ²u²)^{hⱼ/4} · exp(½ Σⱼ δⱼ²λⱼ²u²/(1+λⱼ²u²)).
    """
    if x <= 0:
        return 0.0  # Q is a.s. positive, and w = x/2 must be > 0 for QAWF
    lam = form.weights
    h = form.dofs
    nc = form.noncentralities

    limit_at_zero = 0.5 * (float(np.sum(h * lam)) + float(np.sum(nc * lam)) - x)

    def phase_smooth(u: float) -> float:
        """φ(u) = θ(u) + x·u/2 — the bounded, non-oscillatory part of the phase."""
        lu = lam * u
        lu2 = lu * lu
        return 0.5 * (
            float(np.sum(h * np.arctan(lu))) + float(np.sum(nc * lu / (1.0 + lu2)))
        )

    def inv_u_rho(u: float) -> float:
        """1/(u·ρ(u)) — the integrand's decreasing envelope."""
        lu2 = (lam * u) ** 2
        log_rho = 0.25 * float(np.sum(h * np.log1p(lu2))) + 0.5 * float(
            np.sum(nc * lu2 / (1.0 + lu2))
        )
        return math.exp(-math.log(u) - log_rho)

    def integrand(u: float) -> float:
        if u < 1e-12:
            # Limit as u -> 0: theta/u -> (sum h*lam + sum nc*lam - x)/2, rho -> 1.
            return limit_at_zero
        return math.sin(phase_smooth(u) - 0.5 * x * u) * inv_u_rho(u)

    # The integrand oscillates as sin(phi(u) - w*u) with w = x/2 and phi smooth
    # and bounded.  Integrate a head interval holding at most a few periods
    # adaptively, then hand the infinite oscillatory tail to QUADPACK's
    # Fourier integrator (QAWF) after splitting the sine of a difference.
    w = 0.5 * x
    # Keep the adaptively-integrated head interval to a few dozen periods.
    head_end = min(1.0, 40.0 * math.pi / w)
    head, _ = integrate.quad(
        integrand, 0.0, head_end, epsabs=tol, epsrel=1e-9, limit=400
    )
    # sin(phi - wu) = sin(phi)cos(wu) - cos(phi)sin(wu); QUADPACK's Fourier
    # integrator (QAWF) handles each term over [head_end, inf) for any w > 0.
    cos_part, _ = integrate.quad(
        lambda u: math.sin(phase_smooth(u)) * inv_u_rho(u),
        head_end,
        np.inf,
        weight="cos",
        wvar=w,
        epsabs=tol,
        limit=400,
    )
    sin_part, _ = integrate.quad(
        lambda u: -math.cos(phase_smooth(u)) * inv_u_rho(u),
        head_end,
        np.inf,
        weight="sin",
        wvar=w,
        epsabs=tol,
        limit=400,
    )
    value = head + cos_part + sin_part
    if not math.isfinite(value):
        raise IntegrationError(f"Imhof inversion diverged for x={x}")
    upper_tail = 0.5 + value / math.pi
    return float(min(1.0, max(0.0, 1.0 - upper_tail)))


def ruben_cdf(
    form: GaussianQuadraticForm,
    x: float,
    *,
    max_terms: int = 10_000,
    tol: float = 1e-12,
) -> float:
    """P(Q ≤ x) by Ruben's (1962) mixture-of-central-χ² series.

    With expansion parameter β = min λⱼ every mixture weight aₖ is
    non-negative and they sum to 1, so the truncation error after K terms
    is bounded by 1 − Σ_{k≤K} aₖ — the loop stops once that bound (times
    the largest possible CDF value) is below ``tol``.
    """
    if x < 0:
        return 0.0
    if x == 0:
        return 0.0
    lam = form.weights
    h = form.dofs
    nc = form.noncentralities
    beta = float(lam.min())
    ratios = 1.0 - beta / lam  # r_j in [0, 1)
    rho = float(h.sum())

    log_a0 = -0.5 * float(nc.sum()) + 0.5 * float(np.sum(h * np.log(beta / lam)))
    if log_a0 < -700.0:
        raise IntegrationError(
            f"Ruben's leading weight underflows (log a0 = {log_a0:.0f}); the "
            "noncentrality is too large for this expansion — use Imhof"
        )
    # Mixture weights a_k and series coefficients g_k as growing arrays so
    # the convolution a_k = (1/(2k)) sum_{r<=k} g_r a_{k-r} is one rolling
    # dot product instead of an O(k) Python loop per term.
    capacity = 64
    a = np.zeros(capacity)
    g = np.zeros(capacity)
    a[0] = math.exp(log_a0)
    # g_k = sum_j h_j r_j^k + k*beta * sum_j (nc_j/lam_j) r_j^(k-1)
    weight_sum = a[0]
    scaled_x = x / beta
    cdf = a[0] * float(special.gammainc(rho / 2.0, scaled_x / 2.0))
    ratio_pow = np.ones_like(ratios)  # r_j^(k-1) entering iteration k
    nc_over_lam = nc / lam
    for k in range(1, max_terms + 1):
        if k >= capacity:
            capacity *= 2
            a = np.concatenate([a, np.zeros(capacity - a.size)])
            g = np.concatenate([g, np.zeros(capacity - g.size)])
        g[k - 1] = float(np.sum(h * ratio_pow * ratios)) + k * beta * float(
            np.sum(nc_over_lam * ratio_pow)
        )
        ratio_pow = ratio_pow * ratios
        a_k = float(np.dot(g[:k], a[k - 1 :: -1])) / (2.0 * k)
        a[k] = a_k
        weight_sum += a_k
        cdf += a_k * float(special.gammainc((rho + 2 * k) / 2.0, scaled_x / 2.0))
        if 1.0 - weight_sum < tol:
            break
    else:
        raise IntegrationError(
            f"Ruben series did not converge in {max_terms} terms "
            f"(remaining mass {1.0 - weight_sum:.3e}); weights span "
            f"{lam.min():g}..{lam.max():g}"
        )
    return float(min(1.0, max(0.0, cdf)))


def ruben_series_block(
    weights: np.ndarray,
    dofs: np.ndarray,
    noncentralities: np.ndarray,
    x: float,
    *,
    theta: float | None = None,
    tol: float = 1e-12,
    max_terms: int = 10_000,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched Ruben series over a block of candidates sharing one spectrum.

    ``noncentralities`` is an ``(m, d)`` block — one row per candidate —
    while ``weights``/``dofs`` (shape ``(d,)``) are shared, as produced by
    :meth:`GaussianQuadraticForm.squared_distance_spectrum`.  The a_k
    recursion runs as array operations over the whole block, and the
    expansion parameter β, the ratio powers r_jᵏ and the incomplete-gamma
    table gammainc((ρ+2k)/2, x/2β) are computed once per term and shared
    by every candidate.

    Returns ``(lower, upper, ok)``: rigorous per-candidate bounds
    [partial sum, partial sum + remaining-mass bound] on P(Q ≤ x) at each
    candidate's stopping point, and ``ok=False`` where the expansion is
    unusable (leading weight underflow, or no decision within
    ``max_terms`` terms) and the caller must fall back to Imhof.

    Truncation is decision-aware: with ``theta`` given, a candidate stops
    as soon as its [lower, upper] interval excludes θ; without it (or for
    genuinely borderline candidates) it stops once the interval is
    narrower than ``tol``.

    The evaluation runs on the compiled kernel backend when available and
    on the arena-buffered NumPy fallback otherwise (see
    :mod:`repro.kernels`); the compiled path may return marginally wider
    — never unsound — bounds.
    """
    return kernels.ruben_block(
        weights, dofs, noncentralities, x,
        theta=theta, tol=tol, max_terms=max_terms,
    )


def chi2_sandwich_bounds(
    form: GaussianQuadraticForm, x: float
) -> tuple[float, float]:
    """Cheap rigorous bounds on P(Q ≤ x).

    Since λ_min·χ²_d(Σδ²) ≤ Q ≤ λ_max·χ²_d(Σδ²) pointwise (with the same
    underlying normals), the noncentral-χ² CDF evaluated at x/λ_max and
    x/λ_min sandwiches the true CDF.  The scalar path always uses the
    exact SciPy evaluation — it feeds the 1e−14 tail shortcut in
    :func:`qualification_probability_exact`, where the compiled backend's
    widening epsilon would defeat the comparison.
    """
    from repro.kernels import fallback as _fallback

    bounds = _fallback.chi2_sandwich_block(
        float(x),
        float(form.dofs.sum()),
        np.array([form.noncentralities.sum()]),
        float(form.weights.min()),
        float(form.weights.max()),
    )
    return (float(bounds[0, 0]), float(bounds[0, 1]))


def chi2_sandwich_bounds_block(
    gaussian: Gaussian, points: np.ndarray, delta: float, *,
    dtype: str = "float64",
) -> np.ndarray:
    """Sandwich bounds on P(‖x − pointsᵢ‖ ≤ delta) for an (m, d) block.

    The degrees of freedom and the weight extrema are shared per query,
    only the total noncentralities vary by row; returns an ``(m, 2)``
    array of [lower, upper] bounds, sound on every backend.

    ``dtype="float32"`` selects the compiled fast path that rotates the
    candidates in single precision: a rigorous rotation error bound is
    converted into a noncentrality interval and the CDF is evaluated at
    its pessimal end, so the bounds stay conservative (slightly wider,
    never unsound).  Without the compiled backend it silently evaluates
    the exact float64 pipeline.
    """
    if dtype not in ("float64", "float32"):
        raise GeometryError(f"unknown dtype {dtype!r}; use 'float64' or 'float32'")
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    if pts.ndim != 2 or pts.shape[1] != gaussian.dim:
        raise GeometryError(
            f"points shape {pts.shape} does not match Gaussian dim {gaussian.dim}"
        )
    threshold = float(delta) ** 2
    lam_min = float(gaussian.eigenvalues.min())
    lam_max = float(gaussian.eigenvalues.max())
    if dtype == "float32":
        return kernels.chi2_sandwich_block_f32(
            gaussian.mean, gaussian.basis, gaussian.eigenvalues, pts,
            threshold, float(gaussian.dim), lam_min, lam_max,
        )
    ncs = kernels.squared_distance_noncentralities(
        gaussian.mean, gaussian.basis, gaussian.eigenvalues, pts
    )
    return kernels.chi2_sandwich_block(
        threshold, float(gaussian.dim), ncs.sum(axis=1), lam_min, lam_max
    )


#: Probabilities closer than this to 0 or 1 are resolved by the sandwich
#: bounds alone, skipping the expensive inversion.
_TAIL_SHORTCUT = 1e-14


def qualification_probability_exact(
    gaussian: Gaussian,
    point: np.ndarray,
    delta: float,
    *,
    method: str = "imhof",
) -> float:
    """Exact P(‖x − point‖ ≤ delta) for x ~ ``gaussian``.

    ``method`` selects ``"imhof"`` or ``"ruben"``; both agree to high
    precision and either can serve as the Phase-3 evaluator when exact
    answers are preferred over Monte Carlo.  Probabilities provably within
    1e−14 of 0 or 1 (by the noncentral-χ² sandwich bounds) are returned
    directly, and Ruben falls back to Imhof when its leading weight
    underflows for extreme noncentralities.
    """
    if delta < 0:
        raise GeometryError(f"delta must be >= 0, got {delta}")
    if delta == 0:
        return 0.0
    if method not in ("imhof", "ruben"):
        raise GeometryError(f"unknown method {method!r}; use 'imhof' or 'ruben'")
    form = GaussianQuadraticForm.squared_distance(gaussian, point)
    threshold = delta * delta
    lower, upper = chi2_sandwich_bounds(form, threshold)
    if upper < _TAIL_SHORTCUT:
        return upper
    if lower > 1.0 - _TAIL_SHORTCUT:
        return lower
    if method == "imhof":
        return imhof_cdf(form, threshold)
    try:
        return ruben_cdf(form, threshold)
    except IntegrationError:
        return imhof_cdf(form, threshold)

"""Exact CDFs of Gaussian quadratic forms.

The qualification probability of a target object o under a Gaussian query
x ~ N(q, Σ) is P(‖x − o‖² ≤ δ²).  Writing y = x − o ~ N(μ, Σ) with
μ = q − o and rotating into the eigenbasis of Σ gives

    ‖y‖² = Σᵢ λᵢ (zᵢ + bᵢ)²,   zᵢ ~ N(0, 1) i.i.d.,

with λᵢ the eigenvalues of Σ and bᵢ = (Eᵀμ)ᵢ / √λᵢ — a weighted sum of
independent noncentral χ² variables.  The paper estimates this probability
by Monte Carlo; here we additionally compute it *exactly* by two classical
methods, which serve as ground truth for the integrators and as an
optional exact Phase-3 evaluator:

- **Imhof (1961)**: numerical inversion of the characteristic function,
  robust for any weights;
- **Ruben (1962)**: a series of central χ² CDFs with a guaranteed
  truncation bound when the expansion parameter β is at most min λᵢ.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import integrate, special

from repro.errors import GeometryError, IntegrationError
from repro.gaussian.distribution import Gaussian

__all__ = [
    "GaussianQuadraticForm",
    "imhof_cdf",
    "ruben_cdf",
    "qualification_probability_exact",
]


@dataclass(frozen=True)
class GaussianQuadraticForm:
    """Q = Σⱼ weights[j] · χ²(df[j], noncentrality[j]), independent terms.

    Attributes
    ----------
    weights:
        Positive weights λⱼ.
    dofs:
        Degrees of freedom hⱼ (positive integers).
    noncentralities:
        Noncentrality parameters δⱼ² ≥ 0 (sum of squared means).
    """

    weights: np.ndarray
    dofs: np.ndarray
    noncentralities: np.ndarray

    def __post_init__(self) -> None:
        w = np.asarray(self.weights, dtype=float)
        h = np.asarray(self.dofs, dtype=float)
        nc = np.asarray(self.noncentralities, dtype=float)
        if not (w.shape == h.shape == nc.shape) or w.ndim != 1 or w.size == 0:
            raise GeometryError(
                "weights, dofs and noncentralities must be equal-length 1-D arrays"
            )
        if np.any(w <= 0):
            raise GeometryError(f"weights must be > 0, got {w}")
        if np.any(h <= 0) or np.any(h != np.round(h)):
            raise GeometryError(f"degrees of freedom must be positive ints, got {h}")
        if np.any(nc < 0):
            raise GeometryError(f"noncentralities must be >= 0, got {nc}")
        object.__setattr__(self, "weights", w)
        object.__setattr__(self, "dofs", h)
        object.__setattr__(self, "noncentralities", nc)

    @classmethod
    def squared_distance(cls, gaussian: Gaussian, point: np.ndarray) -> (
        "GaussianQuadraticForm"
    ):
        """The form ‖x − point‖² for x ~ ``gaussian``."""
        p = np.asarray(point, dtype=float)
        if p.shape != gaussian.mean.shape:
            raise GeometryError(
                f"point shape {p.shape} does not match Gaussian dim {gaussian.dim}"
            )
        mu = gaussian.mean - p
        rotated = gaussian.basis.T @ mu
        weights = gaussian.eigenvalues
        noncentralities = rotated**2 / weights
        return cls(weights, np.ones(gaussian.dim), noncentralities)

    def mean(self) -> float:
        """E[Q] = Σ λⱼ (hⱼ + δⱼ²)."""
        return float(np.sum(self.weights * (self.dofs + self.noncentralities)))

    def variance(self) -> float:
        """Var[Q] = 2 Σ λⱼ² (hⱼ + 2δⱼ²)."""
        return float(
            2.0 * np.sum(self.weights**2 * (self.dofs + 2.0 * self.noncentralities))
        )

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Direct simulation of Q (used in cross-validation tests)."""
        total = np.zeros(n)
        for w, h, nc in zip(self.weights, self.dofs, self.noncentralities):
            total += w * rng.noncentral_chisquare(h, nc, size=n) if nc > 0 else (
                w * rng.chisquare(h, size=n)
            )
        return total


def imhof_cdf(form: GaussianQuadraticForm, x: float, *, tol: float = 1e-10) -> float:
    """P(Q ≤ x) by Imhof's characteristic-function inversion.

    Implements Imhof (1961), Eq. 3.2:

        P(Q > x) = 1/2 + (1/π) ∫₀^∞ sin θ(u) / (u ρ(u)) du

    with θ(u) = ½ Σⱼ [hⱼ·atan(λⱼu) + δⱼ²λⱼu/(1+λⱼ²u²)] − ½xu and
    ρ(u) = Πⱼ (1+λⱼ²u²)^{hⱼ/4} · exp(½ Σⱼ δⱼ²λⱼ²u²/(1+λⱼ²u²)).
    """
    if x <= 0:
        return 0.0  # Q is a.s. positive, and w = x/2 must be > 0 for QAWF
    lam = form.weights
    h = form.dofs
    nc = form.noncentralities

    limit_at_zero = 0.5 * (float(np.sum(h * lam)) + float(np.sum(nc * lam)) - x)

    def phase_smooth(u: float) -> float:
        """φ(u) = θ(u) + x·u/2 — the bounded, non-oscillatory part of the phase."""
        lu = lam * u
        lu2 = lu * lu
        return 0.5 * (
            float(np.sum(h * np.arctan(lu))) + float(np.sum(nc * lu / (1.0 + lu2)))
        )

    def inv_u_rho(u: float) -> float:
        """1/(u·ρ(u)) — the integrand's decreasing envelope."""
        lu2 = (lam * u) ** 2
        log_rho = 0.25 * float(np.sum(h * np.log1p(lu2))) + 0.5 * float(
            np.sum(nc * lu2 / (1.0 + lu2))
        )
        return math.exp(-math.log(u) - log_rho)

    def integrand(u: float) -> float:
        if u < 1e-12:
            # Limit as u -> 0: theta/u -> (sum h*lam + sum nc*lam - x)/2, rho -> 1.
            return limit_at_zero
        return math.sin(phase_smooth(u) - 0.5 * x * u) * inv_u_rho(u)

    # The integrand oscillates as sin(phi(u) - w*u) with w = x/2 and phi smooth
    # and bounded.  Integrate a head interval holding at most a few periods
    # adaptively, then hand the infinite oscillatory tail to QUADPACK's
    # Fourier integrator (QAWF) after splitting the sine of a difference.
    w = 0.5 * x
    # Keep the adaptively-integrated head interval to a few dozen periods.
    head_end = min(1.0, 40.0 * math.pi / w)
    head, _ = integrate.quad(
        integrand, 0.0, head_end, epsabs=tol, epsrel=1e-9, limit=400
    )
    # sin(phi - wu) = sin(phi)cos(wu) - cos(phi)sin(wu); QUADPACK's Fourier
    # integrator (QAWF) handles each term over [head_end, inf) for any w > 0.
    cos_part, _ = integrate.quad(
        lambda u: math.sin(phase_smooth(u)) * inv_u_rho(u),
        head_end,
        np.inf,
        weight="cos",
        wvar=w,
        epsabs=tol,
        limit=400,
    )
    sin_part, _ = integrate.quad(
        lambda u: -math.cos(phase_smooth(u)) * inv_u_rho(u),
        head_end,
        np.inf,
        weight="sin",
        wvar=w,
        epsabs=tol,
        limit=400,
    )
    value = head + cos_part + sin_part
    if not math.isfinite(value):
        raise IntegrationError(f"Imhof inversion diverged for x={x}")
    upper_tail = 0.5 + value / math.pi
    return float(min(1.0, max(0.0, 1.0 - upper_tail)))


def ruben_cdf(
    form: GaussianQuadraticForm,
    x: float,
    *,
    max_terms: int = 10_000,
    tol: float = 1e-12,
) -> float:
    """P(Q ≤ x) by Ruben's (1962) mixture-of-central-χ² series.

    With expansion parameter β = min λⱼ every mixture weight aₖ is
    non-negative and they sum to 1, so the truncation error after K terms
    is bounded by 1 − Σ_{k≤K} aₖ — the loop stops once that bound (times
    the largest possible CDF value) is below ``tol``.
    """
    if x < 0:
        return 0.0
    if x == 0:
        return 0.0
    lam = form.weights
    h = form.dofs
    nc = form.noncentralities
    beta = float(lam.min())
    ratios = 1.0 - beta / lam  # r_j in [0, 1)
    rho = float(h.sum())

    log_a0 = -0.5 * float(nc.sum()) + 0.5 * float(np.sum(h * np.log(beta / lam)))
    if log_a0 < -700.0:
        raise IntegrationError(
            f"Ruben's leading weight underflows (log a0 = {log_a0:.0f}); the "
            "noncentrality is too large for this expansion — use Imhof"
        )
    a = [math.exp(log_a0)]
    # g_k = sum_j h_j r_j^k + k*beta * sum_j (nc_j/lam_j) r_j^(k-1)
    weight_sum = a[0]
    scaled_x = x / beta
    cdf = a[0] * float(special.gammainc(rho / 2.0, scaled_x / 2.0))
    ratio_pow = np.ones_like(ratios)  # r_j^(k-1) entering iteration k
    nc_over_lam = nc / lam
    g_list: list[float] = []
    for k in range(1, max_terms + 1):
        g_k = float(np.sum(h * ratio_pow * ratios)) + k * beta * float(
            np.sum(nc_over_lam * ratio_pow)
        )
        ratio_pow = ratio_pow * ratios
        g_list.append(g_k)
        # a_k = (1/(2k)) * sum_{r=1..k} g_r a_{k-r}
        a_k = sum(g_list[r - 1] * a[k - r] for r in range(1, k + 1)) / (2.0 * k)
        a.append(a_k)
        weight_sum += a_k
        cdf += a_k * float(special.gammainc((rho + 2 * k) / 2.0, scaled_x / 2.0))
        if 1.0 - weight_sum < tol:
            break
    else:
        raise IntegrationError(
            f"Ruben series did not converge in {max_terms} terms "
            f"(remaining mass {1.0 - weight_sum:.3e}); weights span "
            f"{lam.min():g}..{lam.max():g}"
        )
    return float(min(1.0, max(0.0, cdf)))


def chi2_sandwich_bounds(
    form: GaussianQuadraticForm, x: float
) -> tuple[float, float]:
    """Cheap rigorous bounds on P(Q ≤ x).

    Since λ_min·χ²_d(Σδ²) ≤ Q ≤ λ_max·χ²_d(Σδ²) pointwise (with the same
    underlying normals), the noncentral-χ² CDF evaluated at x/λ_max and
    x/λ_min sandwiches the true CDF.
    """
    from scipy import stats as _stats

    if x <= 0:
        return (0.0, 0.0)
    df = float(form.dofs.sum())
    nc_total = float(form.noncentralities.sum())
    lam_min = float(form.weights.min())
    lam_max = float(form.weights.max())
    if nc_total > 0:
        lower = float(_stats.ncx2.cdf(x / lam_max, df, nc_total))
        upper = float(_stats.ncx2.cdf(x / lam_min, df, nc_total))
    else:
        lower = float(_stats.chi2.cdf(x / lam_max, df))
        upper = float(_stats.chi2.cdf(x / lam_min, df))
    return (lower, upper)


#: Probabilities closer than this to 0 or 1 are resolved by the sandwich
#: bounds alone, skipping the expensive inversion.
_TAIL_SHORTCUT = 1e-14


def qualification_probability_exact(
    gaussian: Gaussian,
    point: np.ndarray,
    delta: float,
    *,
    method: str = "imhof",
) -> float:
    """Exact P(‖x − point‖ ≤ delta) for x ~ ``gaussian``.

    ``method`` selects ``"imhof"`` or ``"ruben"``; both agree to high
    precision and either can serve as the Phase-3 evaluator when exact
    answers are preferred over Monte Carlo.  Probabilities provably within
    1e−14 of 0 or 1 (by the noncentral-χ² sandwich bounds) are returned
    directly, and Ruben falls back to Imhof when its leading weight
    underflows for extreme noncentralities.
    """
    if delta < 0:
        raise GeometryError(f"delta must be >= 0, got {delta}")
    if delta == 0:
        return 0.0
    if method not in ("imhof", "ruben"):
        raise GeometryError(f"unknown method {method!r}; use 'imhof' or 'ruben'")
    form = GaussianQuadraticForm.squared_distance(gaussian, point)
    threshold = delta * delta
    lower, upper = chi2_sandwich_bounds(form, threshold)
    if upper < _TAIL_SHORTCUT:
        return upper
    if lower > 1.0 - _TAIL_SHORTCUT:
        return lower
    if method == "imhof":
        return imhof_cdf(form, threshold)
    try:
        return ruben_cdf(form, threshold)
    except IntegrationError:
        return imhof_cdf(form, threshold)

"""Gaussian distribution machinery.

This package owns every piece of Gaussian mathematics the query engine
relies on:

- :class:`~repro.gaussian.distribution.Gaussian` — the query-object
  distribution N(q, Σ) with pdf/sampling/decomposition and the
  bounding-function parameters λ∥, λ⊥ of Definition 6;
- :mod:`~repro.gaussian.radial` — the radial CDF of the *normalized*
  Gaussian (a χ distribution) and the offset-sphere mass (a noncentral χ²
  CDF), the closed forms behind both U-catalogs;
- :mod:`~repro.gaussian.quadform` — exact CDFs of Gaussian quadratic forms
  (Imhof's inversion and Ruben's series), i.e. exact qualification
  probabilities to validate the Monte Carlo integrators against.
"""

from repro.gaussian.convolve import conservative_reach_alpha
from repro.gaussian.distribution import Gaussian
from repro.gaussian.mixture import GaussianMixture
from repro.gaussian.radial import (
    alpha_for_mass,
    offset_sphere_mass,
    radial_cdf,
    radial_ppf,
    r_theta,
)
from repro.gaussian.quadform import (
    GaussianQuadraticForm,
    imhof_cdf,
    qualification_probability_exact,
    ruben_cdf,
)

__all__ = [
    "Gaussian",
    "GaussianMixture",
    "radial_cdf",
    "radial_ppf",
    "r_theta",
    "offset_sphere_mass",
    "alpha_for_mass",
    "conservative_reach_alpha",
    "GaussianQuadraticForm",
    "imhof_cdf",
    "ruben_cdf",
    "qualification_probability_exact",
]

"""repro — probabilistic spatial range queries for Gaussian query objects.

A complete, from-scratch reproduction of

    Y. Ishikawa, Y. Iijima, J. X. Yu.
    "Spatial Range Querying for Gaussian-Based Imprecise Query Objects."
    ICDE 2009.

Quickstart::

    import numpy as np
    from repro import SpatialDatabase, Gaussian

    points = np.random.default_rng(0).random((10_000, 2)) * 1000
    db = SpatialDatabase(points)
    sigma = 10.0 * np.array([[7.0, 2 * np.sqrt(3)], [2 * np.sqrt(3), 3.0]])
    result = db.probabilistic_range_query(
        Gaussian([500.0, 500.0], sigma), delta=25.0, theta=0.01
    )
    print(result.ids, result.stats.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.core import (
    QUERY_KINDS,
    BatchResult,
    BatchStats,
    KNNQuery,
    MixtureQueryEngine,
    MixtureRangeQuery,
    TargetCovarianceTable,
    UncertainTargetQuery,
    query_kind,
    PlannerCostModel,
    QueryPlan,
    QueryPlanner,
    mixture_range_query,
    threshold_sweep,
    MonitoringSession,
    MovingObject,
    MovingObjectDatabase,
    SelectivityEstimator,
    stale_gaussian,
    ProbabilisticRangeQuery,
    QueryEngine,
    QueryResult,
    QueryStats,
    SpatialDatabase,
    UncertainDatabase,
    UncertainObject,
    OneDimensionalDatabase,
    make_strategies,
    probabilistic_nearest_neighbors,
)
from repro.core.strategies import (
    BoundingFunctionStrategy,
    EllipsoidStrategy,
    ObliqueStrategy,
    RectilinearStrategy,
)
from repro.gaussian import Gaussian, GaussianMixture
from repro.index import GridIndex, LinearScanIndex, RStarTree
from repro.integrate import (
    AntitheticImportanceSampler,
    CascadeIntegrator,
    ExactIntegrator,
    SequentialImportanceSampler,
    ImportanceSamplingIntegrator,
    MonteCarloIntegrator,
    QuasiMonteCarloIntegrator,
)
from repro.catalog import BFCatalog, RThetaCatalog
from repro.obs import (
    CProfileHook,
    MetricsRegistry,
    Observability,
    ProfilingHook,
    Span,
    Tracer,
)

__version__ = "1.0.0"

__all__ = [
    "ProbabilisticRangeQuery",
    "QUERY_KINDS",
    "query_kind",
    "UncertainTargetQuery",
    "MixtureRangeQuery",
    "KNNQuery",
    "TargetCovarianceTable",
    "QueryEngine",
    "QueryResult",
    "QueryStats",
    "BatchResult",
    "BatchStats",
    "SpatialDatabase",
    "MonitoringSession",
    "MovingObject",
    "MovingObjectDatabase",
    "SelectivityEstimator",
    "stale_gaussian",
    "UncertainDatabase",
    "UncertainObject",
    "OneDimensionalDatabase",
    "make_strategies",
    "probabilistic_nearest_neighbors",
    "RectilinearStrategy",
    "ObliqueStrategy",
    "BoundingFunctionStrategy",
    "EllipsoidStrategy",
    "Gaussian",
    "GaussianMixture",
    "MixtureQueryEngine",
    "mixture_range_query",
    "threshold_sweep",
    "QueryPlan",
    "QueryPlanner",
    "PlannerCostModel",
    "RStarTree",
    "GridIndex",
    "LinearScanIndex",
    "ImportanceSamplingIntegrator",
    "MonteCarloIntegrator",
    "QuasiMonteCarloIntegrator",
    "CascadeIntegrator",
    "ExactIntegrator",
    "SequentialImportanceSampler",
    "AntitheticImportanceSampler",
    "BFCatalog",
    "RThetaCatalog",
    "Observability",
    "Tracer",
    "Span",
    "MetricsRegistry",
    "ProfilingHook",
    "CProfileHook",
    "__version__",
]

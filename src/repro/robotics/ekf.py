"""An extended Kalman filter with landmark range-bearing measurements.

The linear filter of :mod:`repro.robotics.kalman` covers GPS-style direct
position fixes; real robot localization (the paper's reference [22])
usually observes *landmarks* — range and bearing to known beacons — a
nonlinear measurement model.  This EKF linearizes it analytically:

    h(x) = [ ‖m − x‖, atan2(m_y − x_y, m_x − x_x) ]   per landmark m,

with the standard Jacobian.  The belief remains a Gaussian, ready to be
used as a probabilistic-range-query object.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ReproError
from repro.gaussian.distribution import Gaussian

__all__ = ["RangeBearingEKF", "wrap_angle"]


def wrap_angle(angle: float) -> float:
    """Wrap to (−π, π] — innovation angles must not jump by 2π."""
    wrapped = math.fmod(angle + math.pi, 2.0 * math.pi)
    if wrapped <= 0.0:
        wrapped += 2.0 * math.pi
    return wrapped - math.pi


class RangeBearingEKF:
    """EKF over a 2-D position state with range-bearing landmark updates.

    The motion model is velocity integration (as in the linear filter);
    only the measurement update is nonlinear.

    Parameters
    ----------
    landmarks:
        (m, 2) known landmark positions.
    process_noise_std:
        Per-step position diffusion (standard deviation).
    range_noise_std, bearing_noise_std:
        Measurement noise standard deviations.
    """

    def __init__(
        self,
        landmarks: np.ndarray,
        *,
        process_noise_std: float = 0.5,
        range_noise_std: float = 0.5,
        bearing_noise_std: float = 0.05,
    ):
        marks = np.asarray(landmarks, dtype=float)
        if marks.ndim != 2 or marks.shape[1] != 2 or marks.shape[0] == 0:
            raise ReproError(
                f"landmarks must be a non-empty (m, 2) array, got {marks.shape}"
            )
        if min(process_noise_std, range_noise_std, bearing_noise_std) <= 0:
            raise ReproError("noise standard deviations must be > 0")
        self.landmarks = marks
        self.process_noise = process_noise_std**2 * np.eye(2)
        self.range_var = range_noise_std**2
        self.bearing_var = bearing_noise_std**2
        self._mean: np.ndarray | None = None
        self._cov: np.ndarray | None = None

    def initialize(self, mean, covariance) -> None:
        m = np.asarray(mean, dtype=float)
        cov = np.asarray(covariance, dtype=float)
        if m.shape != (2,) or cov.shape != (2, 2):
            raise ReproError(
                f"mean must be (2,) and covariance (2, 2), got {m.shape}, {cov.shape}"
            )
        self._mean = m.copy()
        self._cov = cov.copy()

    def _require_initialized(self) -> None:
        if self._mean is None:
            raise ReproError("RangeBearingEKF used before initialize()")

    def belief(self) -> Gaussian:
        self._require_initialized()
        return Gaussian(self._mean, self._cov)

    # ------------------------------------------------------------------
    # Recursion
    # ------------------------------------------------------------------

    def predict(self, velocity) -> None:
        """Dead-reckon one step: x ← x + v, P ← P + Q."""
        self._require_initialized()
        v = np.asarray(velocity, dtype=float)
        if v.shape != (2,):
            raise ReproError(f"velocity must be a 2-vector, got {v.shape}")
        self._mean = self._mean + v
        self._cov = self._cov + self.process_noise

    def measurement_model(self, position, landmark_index: int) -> np.ndarray:
        """h(x): expected [range, bearing] to one landmark."""
        x = np.asarray(position, dtype=float)
        mark = self.landmarks[landmark_index]
        gap = mark - x
        return np.array([float(np.linalg.norm(gap)), math.atan2(gap[1], gap[0])])

    def _jacobian(self, landmark_index: int) -> np.ndarray:
        mark = self.landmarks[landmark_index]
        gap = mark - self._mean
        q = float(gap @ gap)
        r = math.sqrt(q)
        if r < 1e-9:
            raise ReproError(
                f"estimate coincides with landmark {landmark_index}; "
                "the bearing Jacobian is undefined there"
            )
        # d range / dx = -(gap)/r ; d bearing / dx = [gap_y, -gap_x] / q
        return np.array(
            [[-gap[0] / r, -gap[1] / r], [gap[1] / q, -gap[0] / q]]
        )

    def update(self, landmark_index: int, measurement) -> None:
        """Fuse one [range, bearing] observation of a known landmark."""
        self._require_initialized()
        if not 0 <= landmark_index < self.landmarks.shape[0]:
            raise ReproError(f"unknown landmark index {landmark_index}")
        z = np.asarray(measurement, dtype=float)
        if z.shape != (2,):
            raise ReproError(f"measurement must be [range, bearing], got {z.shape}")
        predicted = self.measurement_model(self._mean, landmark_index)
        innovation = z - predicted
        innovation[1] = wrap_angle(float(innovation[1]))
        jac = self._jacobian(landmark_index)
        noise = np.diag([self.range_var, self.bearing_var])
        innovation_cov = jac @ self._cov @ jac.T + noise
        gain = self._cov @ jac.T @ np.linalg.inv(innovation_cov)
        self._mean = self._mean + gain @ innovation
        factor = np.eye(2) - gain @ jac
        # Joseph form for numerical symmetry.
        self._cov = factor @ self._cov @ factor.T + gain @ noise @ gain.T

    def observe(self, true_position, landmark_index: int, rng) -> np.ndarray:
        """Simulate a noisy observation from the true position."""
        clean = self.measurement_model(true_position, landmark_index)
        noisy = clean + rng.normal(
            0.0, [math.sqrt(self.range_var), math.sqrt(self.bearing_var)]
        )
        noisy[1] = wrap_angle(float(noisy[1]))
        return noisy

"""A 2-D robot simulator producing Gaussian pose estimates.

The robot integrates noisy velocity commands (dead reckoning); its pose
uncertainty grows between the sparse position fixes (think occasional GPS)
that shrink it again — reproducing the growing/shrinking uncertainty
ellipses of the paper's Fig. 1.  Each step yields a
:class:`PoseEstimate`: the *true* (hidden) position plus the Kalman belief
to be used as a probabilistic-range-query object.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.gaussian.distribution import Gaussian
from repro.robotics.kalman import KalmanFilter

__all__ = ["PoseEstimate", "RobotSimulator"]


@dataclass(frozen=True)
class PoseEstimate:
    """One simulation step: ground truth and the filter's belief."""

    step: int
    true_position: np.ndarray
    belief: Gaussian
    had_fix: bool

    @property
    def error(self) -> float:
        """Distance between the belief mean and the true position."""
        return float(np.linalg.norm(self.belief.mean - self.true_position))


class RobotSimulator:
    """Simulates a velocity-driven robot with dead reckoning + sparse fixes.

    Parameters
    ----------
    start:
        Initial true position (the filter starts there with small
        uncertainty).
    odometry_noise:
        Standard deviation of the per-step velocity integration error.
    fix_noise:
        Standard deviation of a position fix measurement.
    fix_interval:
        A fix arrives every this many steps (0 disables fixes entirely —
        pure dead reckoning with unbounded uncertainty growth).
    seed:
        Drives command noise, odometry noise and fix noise.
    """

    def __init__(
        self,
        start=(0.0, 0.0),
        *,
        odometry_noise: float = 0.8,
        fix_noise: float = 3.0,
        fix_interval: int = 25,
        seed: int = 0,
    ):
        if odometry_noise <= 0 or fix_noise <= 0:
            raise ReproError("noise standard deviations must be > 0")
        if fix_interval < 0:
            raise ReproError(f"fix_interval must be >= 0, got {fix_interval}")
        self._rng = np.random.default_rng(seed)
        self._true = np.asarray(start, dtype=float)
        if self._true.shape != (2,):
            raise ReproError(f"start must be a 2-vector, got {self._true.shape}")
        self.odometry_noise = float(odometry_noise)
        self.fix_noise = float(fix_noise)
        self.fix_interval = int(fix_interval)
        self._step = 0

        identity = np.eye(2)
        self._filter = KalmanFilter(
            transition=identity,
            process_noise=odometry_noise**2 * identity,
            observation=identity,
            observation_noise=fix_noise**2 * identity,
            control=identity,
        )
        self._filter.initialize(self._true, 0.01 * identity)

    @property
    def step_count(self) -> int:
        return self._step

    def advance(self, commanded_velocity) -> PoseEstimate:
        """Execute one motion step and return the updated estimate."""
        v = np.asarray(commanded_velocity, dtype=float)
        if v.shape != (2,):
            raise ReproError(f"velocity must be a 2-vector, got {v.shape}")
        self._step += 1
        # True motion: commanded velocity corrupted by odometry error.
        self._true = self._true + v + self._rng.normal(0.0, self.odometry_noise, 2)
        self._filter.predict(v)
        had_fix = bool(
            self.fix_interval and self._step % self.fix_interval == 0
        )
        if had_fix:
            measurement = self._true + self._rng.normal(0.0, self.fix_noise, 2)
            self._filter.update(measurement)
        return PoseEstimate(
            step=self._step,
            true_position=self._true.copy(),
            belief=self._filter.belief(),
            had_fix=had_fix,
        )

    def run(self, velocities) -> list[PoseEstimate]:
        """Advance through a whole command sequence."""
        return [self.advance(v) for v in velocities]

"""A from-scratch linear Kalman filter.

The textbook predict/update recursion (Thrun, Burgard, Fox — the paper's
reference [22] — chapter 3):

    predict:  x ← A x + B u,            P ← A P Aᵀ + Q
    update:   K = P Hᵀ (H P Hᵀ + R)⁻¹
              x ← x + K (z − H x),      P ← (I − K H) P

The filter state (x, P) *is* the Gaussian query object of the paper: mean
q and covariance Σ.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.gaussian.distribution import Gaussian

__all__ = ["KalmanFilter"]


def _square(matrix: np.ndarray, name: str, size: int | None = None) -> np.ndarray:
    mat = np.asarray(matrix, dtype=float)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise ReproError(f"{name} must be square, got shape {mat.shape}")
    if size is not None and mat.shape[0] != size:
        raise ReproError(f"{name} must be {size}x{size}, got {mat.shape[0]}")
    return mat


class KalmanFilter:
    """Linear-Gaussian state estimator.

    Parameters
    ----------
    transition:
        State transition matrix A (n × n).
    process_noise:
        Process noise covariance Q (n × n, positive semidefinite).
    observation:
        Observation matrix H (m × n).
    observation_noise:
        Measurement noise covariance R (m × m, positive definite).
    control:
        Optional control matrix B (n × k).
    """

    def __init__(
        self,
        transition: np.ndarray,
        process_noise: np.ndarray,
        observation: np.ndarray,
        observation_noise: np.ndarray,
        control: np.ndarray | None = None,
    ):
        self.transition = _square(transition, "transition")
        n = self.transition.shape[0]
        self.process_noise = _square(process_noise, "process_noise", n)
        obs = np.asarray(observation, dtype=float)
        if obs.ndim != 2 or obs.shape[1] != n:
            raise ReproError(
                f"observation must have shape (m, {n}), got {obs.shape}"
            )
        self.observation = obs
        self.observation_noise = _square(
            observation_noise, "observation_noise", obs.shape[0]
        )
        if control is not None:
            ctrl = np.asarray(control, dtype=float)
            if ctrl.ndim != 2 or ctrl.shape[0] != n:
                raise ReproError(
                    f"control must have shape ({n}, k), got {ctrl.shape}"
                )
            self.control = ctrl
        else:
            self.control = None
        self._mean: np.ndarray | None = None
        self._covariance: np.ndarray | None = None

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------

    def initialize(self, mean: np.ndarray, covariance: np.ndarray) -> None:
        """Set the initial belief N(mean, covariance)."""
        m = np.asarray(mean, dtype=float)
        n = self.transition.shape[0]
        if m.shape != (n,):
            raise ReproError(f"mean must have shape ({n},), got {m.shape}")
        self._mean = m.copy()
        self._covariance = _square(covariance, "covariance", n).copy()

    @property
    def state(self) -> tuple[np.ndarray, np.ndarray]:
        self._require_initialized()
        return self._mean.copy(), self._covariance.copy()

    def belief(self) -> Gaussian:
        """The current belief as a :class:`Gaussian` (usable as a PRQ query)."""
        self._require_initialized()
        return Gaussian(self._mean, self._covariance)

    def _require_initialized(self) -> None:
        if self._mean is None:
            raise ReproError("KalmanFilter used before initialize()")

    # ------------------------------------------------------------------
    # Recursion
    # ------------------------------------------------------------------

    def predict(self, control_input: np.ndarray | None = None) -> None:
        """Time update: propagate mean and covariance one step."""
        self._require_initialized()
        self._mean = self.transition @ self._mean
        if control_input is not None:
            if self.control is None:
                raise ReproError("filter was built without a control matrix")
            u = np.asarray(control_input, dtype=float)
            if u.shape != (self.control.shape[1],):
                raise ReproError(
                    f"control input must have shape ({self.control.shape[1]},), "
                    f"got {u.shape}"
                )
            self._mean = self._mean + self.control @ u
        self._covariance = (
            self.transition @ self._covariance @ self.transition.T
            + self.process_noise
        )

    def update(self, measurement: np.ndarray) -> None:
        """Measurement update with observation z."""
        self._require_initialized()
        z = np.asarray(measurement, dtype=float)
        m = self.observation.shape[0]
        if z.shape != (m,):
            raise ReproError(f"measurement must have shape ({m},), got {z.shape}")
        innovation = z - self.observation @ self._mean
        innovation_cov = (
            self.observation @ self._covariance @ self.observation.T
            + self.observation_noise
        )
        gain = self._covariance @ self.observation.T @ np.linalg.inv(innovation_cov)
        self._mean = self._mean + gain @ innovation
        identity = np.eye(self.transition.shape[0])
        # Joseph form keeps the covariance symmetric positive definite.
        factor = identity - gain @ self.observation
        self._covariance = (
            factor @ self._covariance @ factor.T
            + gain @ self.observation_noise @ gain.T
        )

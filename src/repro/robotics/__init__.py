"""Robot localization substrate (the paper's motivating application).

Example 1 of the paper shows a moving robot whose pose estimate at each
step is a Gaussian produced by probabilistic localization.  This package
provides that producer:

- :class:`~repro.robotics.kalman.KalmanFilter` — a from-scratch linear
  Kalman filter (predict/update with full covariance propagation);
- :class:`~repro.robotics.ekf.RangeBearingEKF` — an extended Kalman
  filter observing known landmarks through the nonlinear range-bearing
  model (the localization setup of the paper's robotics reference);
- :class:`~repro.robotics.trajectory.RobotSimulator` — a 2-D robot with
  noisy odometry and sparse position fixes, whose filtered trajectory is a
  sequence of :class:`repro.Gaussian` poses ready to be used as query
  objects.
"""

from repro.robotics.kalman import KalmanFilter
from repro.robotics.ekf import RangeBearingEKF, wrap_angle
from repro.robotics.trajectory import PoseEstimate, RobotSimulator

__all__ = ["KalmanFilter", "RangeBearingEKF", "wrap_angle", "RobotSimulator", "PoseEstimate"]

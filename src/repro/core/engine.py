"""The generic three-phase query processor (Section III-B).

Phase 1 (index-based search) intersects the search rectangles contributed
by the active strategies and runs one rectangle range search.  Phase 2
(filtering) classifies every candidate with every strategy; a single
REJECT drops the candidate, a single ACCEPT (only BF issues these) adds it
to the result without integration.  Phase 3 (probability computation)
evaluates the remaining candidates with the configured integrator and
keeps those with estimate >= θ.

The engine is strategy-agnostic: the paper's six configurations are just
different strategy lists (see :func:`repro.core.strategies.make_strategies`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.query import ProbabilisticRangeQuery
from repro.core.stats import QueryStats
from repro.core.strategies import ACCEPT, REJECT, Strategy
from repro.errors import QueryError
from repro.geometry.mbr import Rect
from repro.index.base import SpatialIndex
from repro.integrate.base import ProbabilityIntegrator
from repro.integrate.importance import ImportanceSamplingIntegrator

__all__ = ["QueryEngine", "QueryResult"]


@dataclass(frozen=True)
class QueryResult:
    """Sorted result ids plus execution statistics."""

    ids: tuple[int, ...]
    stats: QueryStats

    def __len__(self) -> int:
        return len(self.ids)

    def __contains__(self, obj_id: int) -> bool:
        return obj_id in set(self.ids)


@dataclass(frozen=True)
class QueryPlan:
    """The output of :meth:`QueryEngine.explain`."""

    strategies: tuple[str, ...]
    descriptions: tuple[str, ...]
    search_rect: Rect | None
    proves_empty: str | None
    predicted_candidates: float | None

    def render(self) -> str:
        lines = [f"strategies: {' + '.join(self.strategies)}"]
        lines.extend(f"  {text}" for text in self.descriptions)
        if self.proves_empty:
            lines.append(f"result proven empty by {self.proves_empty}")
        elif self.search_rect is not None:
            lines.append(f"phase-1 search rectangle: {self.search_rect!r}")
        if self.predicted_candidates is not None:
            lines.append(
                f"predicted phase-3 candidates: {self.predicted_candidates:.1f}"
            )
        return "\n".join(lines)


class QueryEngine:
    """Executes probabilistic range queries over a spatial index.

    Parameters
    ----------
    index:
        Any :class:`repro.index.SpatialIndex` holding the target objects.
    strategies:
        Filtering strategies to combine; must be non-empty (the strategies
        also supply the Phase-1 search region).
    integrator:
        Phase-3 probability evaluator; defaults to the paper's importance
        sampling with 100,000 samples.
    """

    def __init__(
        self,
        index: SpatialIndex,
        strategies: list[Strategy],
        integrator: ProbabilityIntegrator | None = None,
        *,
        phase1: str = "intersect",
    ):
        if not strategies:
            raise QueryError("at least one strategy is required")
        if phase1 not in ("intersect", "primary"):
            raise QueryError(
                f"phase1 must be 'intersect' or 'primary', got {phase1!r}"
            )
        self.index = index
        self.strategies = list(strategies)
        self.integrator = integrator or ImportanceSamplingIntegrator()
        #: Phase-1 policy.  ``"intersect"`` (default) intersects every
        #: strategy's rectangle; ``"primary"`` searches only the first
        #: strategy's rectangle, exactly as the paper's Algorithms 1 and 2
        #: do (the remaining strategies act purely as Phase-2 filters).
        self.phase1 = phase1

    def execute(self, query: ProbabilisticRangeQuery) -> QueryResult:
        stats = QueryStats()

        # ------------------------------------------------------ Phase 1
        with stats.time_phase("search"):
            search_rect = self.prepare_search(query, stats)
            if search_rect is None:
                return QueryResult((), stats)
            candidate_ids = self.index.range_search_rect(search_rect)
            stats.retrieved = len(candidate_ids)
            if not candidate_ids:
                return QueryResult((), stats)
            points = np.vstack([self.index.get(i) for i in candidate_ids])

        return self.filter_and_integrate(query, candidate_ids, points, stats)

    def prepare_search(
        self, query: ProbabilisticRangeQuery, stats: QueryStats
    ) -> Rect | None:
        """Prepare every strategy and return the combined Phase-1 rectangle.

        Returns ``None`` when some strategy proved the result empty (the
        reason is recorded in ``stats.empty_by_strategy``).
        """
        if query.dim != self.index.dim:
            raise QueryError(
                f"query dimension {query.dim} does not match index "
                f"dimension {self.index.dim}"
            )
        for strategy in self.strategies:
            strategy.prepare(query)
        for strategy in self.strategies:
            if strategy.proves_empty:
                stats.empty_by_strategy = strategy.name
                return None
        search_rect = self._combined_search_rect()
        if search_rect is None:
            stats.empty_by_strategy = "intersection"
        return search_rect

    def filter_and_integrate(
        self,
        query: ProbabilisticRangeQuery,
        candidate_ids: list[int],
        points: np.ndarray,
        stats: QueryStats,
    ) -> QueryResult:
        """Phases 2 and 3 over an externally supplied candidate set.

        The strategies must already be prepared for ``query`` (as done by
        :meth:`prepare_search`); the monitoring session uses this to feed
        cached candidates instead of a fresh index search.
        """
        # ------------------------------------------------------ Phase 2
        accepted: list[int] = []
        with stats.time_phase("filter"):
            undecided = np.ones(len(candidate_ids), dtype=bool)
            accept_mask = np.zeros(len(candidate_ids), dtype=bool)
            for strategy in self.strategies:
                if not np.any(undecided):
                    break
                codes = strategy.classify(points[undecided])
                rejected = codes == REJECT
                stats.note_rejections(strategy.name, int(np.count_nonzero(rejected)))
                idx = np.nonzero(undecided)[0]
                accept_mask[idx[codes == ACCEPT]] = True
                undecided[idx[rejected]] = False
                undecided[idx[codes == ACCEPT]] = False
            accepted = [
                candidate_ids[i] for i in np.nonzero(accept_mask)[0]
            ]
            stats.accepted_without_integration = len(accepted)
            to_integrate = np.nonzero(undecided)[0]

        # ------------------------------------------------------ Phase 3
        with stats.time_phase("integrate"):
            stats.integrations = int(to_integrate.size)
            if to_integrate.size:
                estimates = self.integrator.qualification_probabilities(
                    query.gaussian, points[to_integrate], query.delta
                )
                for slot, result in zip(to_integrate, estimates):
                    stats.integration_samples += result.n_samples
                    if result.meets_threshold(query.theta):
                        accepted.append(candidate_ids[slot])

        ids = tuple(sorted(accepted))
        stats.results = len(ids)
        return QueryResult(ids, stats)

    def explain(
        self, query: ProbabilisticRangeQuery, *, estimator=None
    ) -> "QueryPlan":
        """Describe how this engine would process ``query`` without running
        Phase 3.

        Returns a :class:`QueryPlan` with each strategy's derived geometry
        (region radii/half-widths), the combined Phase-1 rectangle, and —
        when a :class:`repro.core.selectivity.SelectivityEstimator` is
        supplied — the predicted Phase-3 candidate count.
        """
        stats = QueryStats()
        rect = self.prepare_search(query, stats)
        descriptions: list[str] = []
        for strategy in self.strategies:
            if strategy.name == "RR":
                region = strategy.region  # type: ignore[attr-defined]
                widths = (region.core.extents / 2.0).round(3).tolist()
                descriptions.append(
                    f"RR: theta-region box half-widths {widths}, "
                    f"dilated by delta={region.delta:g}"
                )
            elif strategy.name == "OR":
                half = strategy.box.half_widths.round(3).tolist()  # type: ignore[attr-defined]
                descriptions.append(f"OR: oblique box half-widths {half}")
            elif strategy.name == "BF":
                upper = strategy.alpha_upper  # type: ignore[attr-defined]
                lower = strategy.alpha_lower  # type: ignore[attr-defined]
                descriptions.append(
                    "BF: prune beyond "
                    + (f"{upper:.3f}" if upper is not None else "— (empty result)")
                    + ", accept within "
                    + (f"{lower:.3f}" if lower is not None else "— (no hole)")
                )
        predicted = None
        if estimator is not None and rect is not None:
            predicted = estimator.estimate_candidates(
                query, list(self.strategies)
            )
        return QueryPlan(
            strategies=tuple(s.name for s in self.strategies),
            descriptions=tuple(descriptions),
            search_rect=rect,
            proves_empty=stats.empty_by_strategy,
            predicted_candidates=predicted,
        )

    def _combined_search_rect(self) -> Rect | None:
        """The Phase-1 rectangle per the engine's policy; ``None`` if empty."""
        rect: Rect | None = None
        for strategy in self.strategies:
            contribution = strategy.search_rect()
            if contribution is None:
                continue
            if self.phase1 == "primary":
                return contribution  # the first contributing strategy wins
            rect = contribution if rect is None else rect.intersection(contribution)
            if rect is None:
                return None
        if rect is None:
            raise QueryError(
                "no strategy contributed a Phase-1 search region; include RR, "
                "OR, EM or BF"
            )
        return rect

"""The generic three-phase query processor (Section III-B).

Phase 1 (index-based search) intersects the search rectangles contributed
by the active strategies and runs one rectangle range search.  Phase 2
(filtering) classifies every candidate with every strategy; a single
REJECT drops the candidate, a single ACCEPT (only BF issues these) adds it
to the result without integration.  Phase 3 (probability computation)
evaluates the remaining candidates with the configured integrator and
keeps those with estimate >= θ.

The phases themselves live in :mod:`repro.core.stages` as composable
stage objects (`SearchStage`, `FilterStage`, `IntegrateStage`); every
engine entry point — :meth:`QueryEngine.execute`, :meth:`QueryEngine.run`
and :meth:`QueryEngine.run_batch` — builds a pipeline and hands it to the
single shared driver :func:`repro.core.stages.execute_pipeline`, so the
single-query and batch paths cannot drift apart.

The engine is strategy-agnostic: the paper's six configurations are just
different strategy lists (see :func:`repro.core.strategies.make_strategies`).
With a :class:`repro.core.planner.QueryPlanner` attached (the
``strategy="auto"`` path), the engine instead plans each query
individually: the planner scores every candidate (strategy combo ×
phase-1 mode × integrator) on its cost model and the engine executes the
cheapest plan, recording predictions into :class:`QueryStats`.

Beyond single-query :meth:`QueryEngine.execute`, the engine offers a
batched path — :meth:`QueryEngine.run` (sequential) and
:meth:`QueryEngine.run_batch` (thread-parallel) — in which every query
gets its own strategy clones and a forked integrator seeded from one
spawned :class:`numpy.random.SeedSequence`.  Results therefore depend
only on (seed, query position), never on worker count or completion
order: ``run_batch(queries, workers=k)`` is bit-identical to
``run(queries)`` for every ``k`` — with or without a planner (plans are a
pure function of the quantized query shape, so a cold plan cache and a
warm one produce identical result sets).
"""

from __future__ import annotations

import functools
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

import numpy as np

from repro.core.kinds import adapt_pipeline
from repro.core.query import ProbabilisticRangeQuery
from repro.core.stages import (
    FilterStage,
    IntegrateStage,
    SearchStage,
    StageContext,
    execute_pipeline,
)
from repro.core.stats import BatchStats, QueryStats
from repro.core.strategies import STRATEGY_COMBINATIONS, Strategy
from repro.errors import QueryError, ReproError
from repro.geometry.mbr import Rect
from repro.index.base import SpatialIndex
from repro.integrate.base import ProbabilityIntegrator
from repro.integrate.importance import ImportanceSamplingIntegrator
from repro.obs import Observability

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.planner import PlanChoice, QueryPlanner

__all__ = ["QueryEngine", "QueryResult", "BatchResult", "QueryPlan"]

#: Signature of the optional per-query integrator factory accepted by
#: ``run``/``run_batch``: (query, spawned seed sequence) -> integrator.
IntegratorFactory = Callable[
    [ProbabilisticRangeQuery, np.random.SeedSequence], ProbabilityIntegrator
]


@dataclass(frozen=True)
class QueryResult:
    """Sorted result ids plus execution statistics.

    ``error`` is ``None`` on success.  Under
    ``run_batch(..., return_errors=True)`` a query whose execution raised
    gets an *empty* result carrying the typed error instead — the batch
    itself completes and every other query is unaffected.
    """

    ids: tuple[int, ...]
    stats: QueryStats
    #: Typed failure (always a ReproError subclass) when this query's
    #: execution raised and the caller asked for captured errors.
    error: ReproError | None = None

    @property
    def failed(self) -> bool:
        """True when this query failed (``error`` is set)."""
        return self.error is not None

    @functools.cached_property
    def _id_set(self) -> frozenset[int]:
        # Built lazily on first membership test and reused: ids is
        # immutable, so rebuilding a set per `in` would be pure waste.
        return frozenset(self.ids)

    def __len__(self) -> int:
        return len(self.ids)

    def __contains__(self, obj_id: int) -> bool:
        return obj_id in self._id_set


@dataclass(frozen=True)
class BatchResult:
    """Per-query results (input order) plus batch-level statistics."""

    results: tuple[QueryResult, ...]
    stats: BatchStats

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[QueryResult]:
        return iter(self.results)

    def __getitem__(self, i: int) -> QueryResult:
        return self.results[i]

    @property
    def ids(self) -> tuple[tuple[int, ...], ...]:
        """The result id tuples, one per query, in input order."""
        return tuple(r.ids for r in self.results)


@dataclass(frozen=True)
class QueryPlan:
    """The output of :meth:`QueryEngine.explain` — an explainable plan.

    Beyond the strategy descriptions and Phase-1 rectangle, a planned
    (``strategy="auto"``) engine attaches the full cost-model comparison:
    every candidate plan the planner scored, with predicted candidate
    counts and predicted cost, cheapest first.
    """

    strategies: tuple[str, ...]
    descriptions: tuple[str, ...]
    search_rect: Rect | None
    proves_empty: str | None
    predicted_candidates: float | None
    #: Phase-1 policy the plan executes with.
    phase1: str = "intersect"
    #: BF pruning radius α∥ (None = result proven empty or BF inactive).
    alpha_upper: float | None = None
    #: BF free-accept radius α⊥ (None = no inner hole or BF inactive).
    alpha_lower: float | None = None
    #: Cost-model prediction for the whole query, seconds.
    predicted_seconds: float | None = None
    #: Every plan the planner considered, cheapest first (empty when the
    #: engine runs a fixed strategy list).
    comparison: tuple["PlanChoice", ...] = ()
    #: True when a cost-based planner chose this plan.
    planned: bool = False

    def summary(self) -> str:
        """One-line digest: strategies, phase-1 mode, BF radii, predictions.

        When BF is active the α∥/α⊥ radii are included so the output is
        directly actionable (they are the exact prune/free-accept
        distances the filter will apply).
        """
        parts = [
            f"strategies={'+'.join(self.strategies)}",
            f"phase1={self.phase1}",
        ]
        if "BF" in self.strategies:
            upper = "-" if self.alpha_upper is None else f"{self.alpha_upper:.3f}"
            lower = "-" if self.alpha_lower is None else f"{self.alpha_lower:.3f}"
            parts.append(f"alpha_par={upper}")
            parts.append(f"alpha_perp={lower}")
        if self.proves_empty:
            parts.append(f"empty_by={self.proves_empty}")
        if self.predicted_candidates is not None:
            parts.append(f"predicted_phase3={self.predicted_candidates:.1f}")
        if self.predicted_seconds is not None:
            parts.append(f"predicted_ms={self.predicted_seconds * 1e3:.2f}")
        return " ".join(parts)

    def render(self) -> str:
        lines = [f"strategies: {' + '.join(self.strategies)}"]
        if self.planned:
            lines[0] += "  (chosen by cost-based planner)"
        lines.extend(f"  {text}" for text in self.descriptions)
        if self.proves_empty:
            lines.append(f"result proven empty by {self.proves_empty}")
        elif self.search_rect is not None:
            lines.append(f"phase-1 search rectangle: {self.search_rect!r}")
        lines.append(f"plan: {self.summary()}")
        if self.predicted_candidates is not None:
            lines.append(
                f"predicted phase-3 candidates: {self.predicted_candidates:.1f}"
            )
        if self.comparison:
            lines.append("plans considered (cost model, cheapest first):")
            lines.append(
                f"    {'strategies':<12} {'phase1':<10} "
                f"{'retrieved':>9} {'phase3':>7} {'cost ms':>8}"
            )
            for choice in self.comparison:
                marker = "  * " if choice is self.comparison[0] else "    "
                lines.append(
                    f"{marker}{choice.strategies:<12} {choice.phase1:<10} "
                    f"{choice.predicted_retrieved:>9.1f} "
                    f"{choice.predicted_candidates:>7.1f} "
                    f"{choice.predicted_seconds * 1e3:>8.2f}"
                )
        return "\n".join(lines)


class QueryEngine:
    """Executes probabilistic range queries over a spatial index.

    Parameters
    ----------
    index:
        Any :class:`repro.index.SpatialIndex` holding the target objects.
    strategies:
        Filtering strategies to combine; must be non-empty (the strategies
        also supply the Phase-1 search region).  With a ``planner`` these
        act as the fallback list for the helper entry points
        (:meth:`prepare_search`, :meth:`filter_and_integrate`).
    integrator:
        Phase-3 probability evaluator; defaults to the paper's importance
        sampling with 100,000 samples.
    planner:
        Optional :class:`repro.core.planner.QueryPlanner`.  When present,
        every executed query is planned individually — the planner picks
        the cheapest (strategy combo × phase-1 mode × integrator) under
        its cost model — and the predictions are recorded in the query's
        :class:`QueryStats`.
    obs:
        Optional :class:`repro.obs.Observability`.  When present, every
        execution emits hierarchical spans (query → phase → integrator
        tier) and feeds the metrics registry per the telemetry contract
        in ``docs/observability.md``.  Observability is RNG-free, so
        results are bit-identical with it on or off.
    targets:
        Optional :class:`repro.core.kinds.TargetCovarianceTable` holding
        per-object target covariances.  Required to execute
        :class:`repro.core.kinds.UncertainTargetQuery` — the kind
        adapters look up each candidate's covariance group here.
    """

    def __init__(
        self,
        index: SpatialIndex,
        strategies: list[Strategy],
        integrator: ProbabilityIntegrator | None = None,
        *,
        phase1: str = "intersect",
        planner: "QueryPlanner | None" = None,
        obs: Observability | None = None,
        targets=None,
    ):
        if not strategies:
            raise QueryError("at least one strategy is required")
        if phase1 not in ("intersect", "primary"):
            raise QueryError(
                f"phase1 must be 'intersect' or 'primary', got {phase1!r}"
            )
        self.index = index
        self.strategies = list(strategies)
        self.integrator = integrator or ImportanceSamplingIntegrator()
        #: Phase-1 policy.  ``"intersect"`` (default) intersects every
        #: strategy's rectangle; ``"primary"`` searches only the first
        #: strategy's rectangle, exactly as the paper's Algorithms 1 and 2
        #: do (the remaining strategies act purely as Phase-2 filters).
        self.phase1 = phase1
        self.planner = planner
        self.obs = obs
        self.targets = targets

    def execute(self, query: ProbabilisticRangeQuery) -> QueryResult:
        result = self._execute_with(query, self.strategies, self.integrator)
        if self.obs is not None and self.planner is not None:
            self.planner.publish_metrics(self.obs)
        return result

    def run(
        self,
        queries: Sequence[ProbabilisticRangeQuery],
        *,
        base_seed: int = 0,
        integrator_factory: IntegratorFactory | None = None,
    ) -> BatchResult:
        """Execute a query batch sequentially with per-query RNG streams.

        This is the reference semantics for :meth:`run_batch`: each query
        gets fresh strategy clones and an integrator forked from the
        ``i``-th spawn of ``SeedSequence(base_seed)``, so the outcome of
        query ``i`` is a pure function of (engine config, ``base_seed``,
        ``i``) — independent of every other query in the batch.

        ``integrator_factory(query, seed_seq)`` overrides the default
        fork of the engine's integrator, e.g. to tune an adaptive sampler
        to each query's own θ.
        """
        return self.run_batch(
            queries,
            workers=1,
            base_seed=base_seed,
            integrator_factory=integrator_factory,
        )

    def run_batch(
        self,
        queries: Sequence[ProbabilisticRangeQuery],
        *,
        workers: int = 1,
        base_seed: int = 0,
        integrator_factory: IntegratorFactory | None = None,
        return_errors: bool = False,
    ) -> BatchResult:
        """Execute independent queries, fanned out over a thread pool.

        Returns a :class:`BatchResult` whose ``results`` follow the input
        order.  Determinism contract: because every query owns its
        strategy clones and a seed spawned by position, the results are
        bit-identical for every ``workers`` value (and to :meth:`run`).
        The engine instance itself is never mutated, so one engine can
        serve many concurrent ``run_batch`` calls.  With a planner, plan
        choices depend only on each query's own quantized shape — never on
        batch order or cache warmth — so the contract still holds.

        Fault isolation: with ``return_errors=True`` a query whose
        execution raises fails *alone* — its slot in the batch becomes an
        empty :class:`QueryResult` carrying a typed
        :class:`~repro.errors.ReproError` (non-library exceptions are
        wrapped in :class:`~repro.errors.QueryError`), every other query
        runs to completion, and the worker pool stays healthy for the
        next batch.  With the default ``return_errors=False`` the first
        failure propagates to the caller (wrapped the same way if it was
        not already typed) after the pool has drained — never a hang,
        never a silently dropped query.
        """
        if workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        queries = list(queries)
        seeds = np.random.SeedSequence(base_seed).spawn(len(queries))
        obs = self.obs
        # Lock-free observability: each query records into its own child
        # tracer/registry; the children are absorbed in *input order*
        # after the pool drains, so traces and metrics are deterministic
        # regardless of completion order (and never contended).
        children = (
            [obs.child() for _ in queries] if obs is not None else None
        )

        def task(pair) -> QueryResult:
            i, query, seed = pair
            try:
                strategies = [s.clone() for s in self.strategies]
                if integrator_factory is not None:
                    integrator = integrator_factory(query, seed)
                else:
                    integrator = self.integrator.fork(seed)
                child = children[i] if children is not None else None
                return self._execute_with(
                    query, strategies, integrator, seed=seed, obs=child
                )
            except BaseException as exc:  # noqa: BLE001 - re-typed below
                error = (
                    exc
                    if isinstance(exc, ReproError)
                    else QueryError(
                        f"query {i} failed: "
                        f"{type(exc).__name__}: {exc}"
                    )
                )
                if error is not exc:
                    error.__cause__ = exc
                if not return_errors:
                    raise error from exc
                return QueryResult((), QueryStats(), error=error)

        batch_span = (
            obs.span("batch", queries=len(queries), workers=workers)
            if obs is not None
            else None
        )
        start = time.perf_counter()
        pairs = [(i, q, s) for i, (q, s) in enumerate(zip(queries, seeds))]
        if batch_span is not None:
            batch_span.__enter__()
        try:
            if workers == 1 or len(queries) <= 1:
                results = [task(pair) for pair in pairs]
            else:
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    results = list(pool.map(task, pairs))
        finally:
            if batch_span is not None:
                batch_span.__exit__(None, None, None)
        wall = time.perf_counter() - start

        batch = BatchStats(workers=workers, wall_seconds=wall)
        for result in results:
            batch.merge(result.stats)
            batch.failed += result.failed
        if obs is not None:
            for child in children:
                obs.absorb(
                    child,
                    parent=batch_span.span if batch_span is not None else None,
                )
            obs.record_batch(batch)
            if self.planner is not None:
                self.planner.publish_metrics(obs)
        return BatchResult(tuple(results), batch)

    def prepare_search(
        self, query: ProbabilisticRangeQuery, stats: QueryStats
    ) -> Rect | None:
        """Prepare every strategy and return the combined Phase-1 rectangle.

        Returns ``None`` when some strategy proved the result empty (the
        reason is recorded in ``stats.empty_by_strategy``).
        """
        stage = SearchStage(self.index, phase1=self.phase1)
        return stage.prepare(query, self.strategies, stats)

    def filter_and_integrate(
        self,
        query: ProbabilisticRangeQuery,
        candidate_ids: list[int],
        points: np.ndarray,
        stats: QueryStats,
    ) -> QueryResult:
        """Phases 2 and 3 over an externally supplied candidate set.

        The strategies must already be prepared for ``query`` (as done by
        :meth:`prepare_search`); the monitoring session uses this to feed
        cached candidates instead of a fresh index search.
        """
        ctx = StageContext(
            query,
            self.strategies,
            self.integrator,
            stats,
            candidate_ids=np.asarray(candidate_ids),
            points=points,
            obs=self.obs,
        )
        ids = execute_pipeline(ctx, [FilterStage(), IntegrateStage()])
        if self.obs is not None:
            self.obs.record_query(stats)
        return QueryResult(ids, stats)

    # ------------------------------------------------------------------
    # The shared execution path: every entry point funnels through here,
    # parameterized by (strategies, integrator) so the batch path can run
    # with per-query clones while the single-query path keeps using the
    # engine's own instances.
    # ------------------------------------------------------------------

    def _execute_with(
        self,
        query: ProbabilisticRangeQuery,
        strategies: list[Strategy],
        integrator: ProbabilityIntegrator,
        *,
        seed: np.random.SeedSequence | None = None,
        obs: Observability | None = None,
    ) -> QueryResult:
        obs = obs if obs is not None else self.obs
        stats = QueryStats()
        phase1 = self.phase1
        query_span = (
            obs.span("query", delta=query.delta, theta=query.theta)
            if obs is not None
            else None
        )
        if query_span is not None:
            query_span.__enter__()
        try:
            if self.planner is not None:
                with stats.time_phase("plan"):
                    plan_span = (
                        obs.span("phase:plan") if obs is not None else None
                    )
                    if plan_span is not None:
                        plan_span.__enter__()
                    try:
                        strategies, integrator, phase1 = self._apply_plan(
                            query, strategies, integrator, stats, seed
                        )
                    finally:
                        if plan_span is not None:
                            plan_span.annotate(
                                strategies="+".join(
                                    stats.plan_strategies or ()
                                ),
                                phase1=stats.plan_phase1,
                                cache_hit=bool(stats.plan_cache_hit),
                            )
                            plan_span.__exit__(None, None, None)
            strategies, integrator = adapt_pipeline(
                query,
                strategies,
                integrator,
                index=self.index,
                targets=self.targets,
                seed=seed,
            )
            ctx = StageContext(query, strategies, integrator, stats, obs=obs)
            stages = [
                SearchStage(self.index, phase1=phase1),
                FilterStage(),
                IntegrateStage(),
            ]
            ids = execute_pipeline(ctx, stages)
        finally:
            if query_span is not None:
                query_span.annotate(
                    retrieved=stats.retrieved,
                    integrations=stats.integrations,
                    results=stats.results,
                )
                query_span.__exit__(None, None, None)
        if obs is not None:
            obs.record_query(stats)
        return QueryResult(ids, stats)

    def _apply_plan(
        self,
        query: ProbabilisticRangeQuery,
        strategies: list[Strategy],
        integrator: ProbabilityIntegrator,
        stats: QueryStats,
        seed: np.random.SeedSequence | None,
    ) -> tuple[list[Strategy], ProbabilityIntegrator, str]:
        """Plan ``query`` and materialize the chosen stages.

        Kind-specific plans carry the kind name (not a strategy combo) as
        their spec; the base strategies pass through untouched and
        :func:`adapt_pipeline` swaps in the kind adapters afterwards.
        """
        decision = self.planner.plan(query, integrator)
        chosen = decision.chosen
        if chosen.strategies in STRATEGY_COMBINATIONS:
            strategies = self.planner.build_strategies(chosen.strategies)
        if chosen.integrator != integrator.name:
            picked = self.planner.integrator_for(chosen.integrator)
            if picked is not None:
                integrator = picked.fork(seed) if seed is not None else picked
        stats.plan_strategies = chosen.strategy_names
        stats.plan_phase1 = chosen.phase1
        stats.plan_cache_hit = decision.cache_hit
        stats.predicted_integrations = chosen.predicted_candidates
        stats.predicted_seconds = chosen.predicted_seconds
        return strategies, integrator, chosen.phase1

    def explain(
        self, query: ProbabilisticRangeQuery, *, estimator=None
    ) -> "QueryPlan":
        """Describe how this engine would process ``query`` without running
        Phase 3.

        Returns a :class:`QueryPlan` with each strategy's derived geometry
        (region radii/half-widths), the combined Phase-1 rectangle, and —
        when a :class:`repro.core.selectivity.SelectivityEstimator` is
        supplied or a planner is attached — the predicted Phase-3
        candidate count.  A planned engine additionally attaches the full
        plan comparison table (every scored candidate plan).
        """
        stats = QueryStats()
        strategies = self.strategies
        phase1 = self.phase1
        predicted = None
        predicted_seconds = None
        comparison: tuple = ()
        planned = False
        if self.planner is not None:
            decision = self.planner.plan(query, self.integrator)
            chosen = decision.chosen
            if chosen.strategies in STRATEGY_COMBINATIONS:
                strategies = self.planner.build_strategies(chosen.strategies)
            phase1 = chosen.phase1
            predicted = chosen.predicted_candidates
            predicted_seconds = chosen.predicted_seconds
            comparison = decision.considered
            planned = True
        strategies, _ = adapt_pipeline(
            query,
            strategies,
            self.integrator,
            index=self.index,
            targets=self.targets,
        )
        stage = SearchStage(self.index, phase1=phase1)
        rect = stage.prepare(query, strategies, stats)
        descriptions: list[str] = []
        alpha_upper = alpha_lower = None
        for strategy in strategies:
            if strategy.name == "RR":
                region = strategy.region  # type: ignore[attr-defined]
                widths = (region.core.extents / 2.0).round(3).tolist()
                descriptions.append(
                    f"RR: theta-region box half-widths {widths}, "
                    f"dilated by delta={region.delta:g}"
                )
            elif strategy.name == "OR":
                half = strategy.box.half_widths.round(3).tolist()  # type: ignore[attr-defined]
                descriptions.append(f"OR: oblique box half-widths {half}")
            elif strategy.name == "BF":
                alpha_upper = strategy.alpha_upper  # type: ignore[attr-defined]
                alpha_lower = strategy.alpha_lower  # type: ignore[attr-defined]
                descriptions.append(
                    "BF: prune beyond "
                    + (
                        f"{alpha_upper:.3f}"
                        if alpha_upper is not None
                        else "— (empty result)"
                    )
                    + ", accept within "
                    + (
                        f"{alpha_lower:.3f}"
                        if alpha_lower is not None
                        else "— (no hole)"
                    )
                )
            elif strategy.name == "UT":
                alpha = strategy.alpha  # type: ignore[attr-defined]
                descriptions.append(
                    "UT: convolved conservative reach "
                    + (
                        f"{alpha:.3f}" if alpha is not None else "— (empty)"
                    )
                    + f" over {strategy.n_groups} target covariance group(s)"  # type: ignore[attr-defined]
                )
            elif strategy.name == "MIX":
                descriptions.append(
                    f"MIX: {strategy.n_live} of {strategy.n_components} "  # type: ignore[attr-defined]
                    "component regions live, unioned for Phase 1"
                )
            elif strategy.name == "KNN":
                descriptions.append(
                    f"KNN: sample-driven candidate cut radius "
                    f"{strategy.cut_radius:.3f}"  # type: ignore[attr-defined]
                )
        if predicted is None and estimator is not None and rect is not None:
            predicted = estimator.estimate_candidates(query, list(strategies))
        return QueryPlan(
            strategies=tuple(s.name for s in strategies),
            descriptions=tuple(descriptions),
            search_rect=rect,
            proves_empty=stats.empty_by_strategy,
            predicted_candidates=predicted,
            phase1=phase1,
            alpha_upper=alpha_upper,
            alpha_lower=alpha_lower,
            predicted_seconds=predicted_seconds,
            comparison=comparison,
            planned=planned,
        )

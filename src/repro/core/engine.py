"""The generic three-phase query processor (Section III-B).

Phase 1 (index-based search) intersects the search rectangles contributed
by the active strategies and runs one rectangle range search.  Phase 2
(filtering) classifies every candidate with every strategy; a single
REJECT drops the candidate, a single ACCEPT (only BF issues these) adds it
to the result without integration.  Phase 3 (probability computation)
evaluates the remaining candidates with the configured integrator and
keeps those with estimate >= θ.

The engine is strategy-agnostic: the paper's six configurations are just
different strategy lists (see :func:`repro.core.strategies.make_strategies`).

Beyond single-query :meth:`QueryEngine.execute`, the engine offers a
batched path — :meth:`QueryEngine.run` (sequential) and
:meth:`QueryEngine.run_batch` (thread-parallel) — in which every query
gets its own strategy clones and a forked integrator seeded from one
spawned :class:`numpy.random.SeedSequence`.  Results therefore depend
only on (seed, query position), never on worker count or completion
order: ``run_batch(queries, workers=k)`` is bit-identical to
``run(queries)`` for every ``k``.
"""

from __future__ import annotations

import functools
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.core.query import ProbabilisticRangeQuery
from repro.core.stats import BatchStats, QueryStats
from repro.core.strategies import ACCEPT, REJECT, Strategy
from repro.errors import QueryError
from repro.geometry.mbr import Rect
from repro.index.base import SpatialIndex
from repro.integrate.base import ProbabilityIntegrator
from repro.integrate.importance import ImportanceSamplingIntegrator

__all__ = ["QueryEngine", "QueryResult", "BatchResult"]

#: Signature of the optional per-query integrator factory accepted by
#: ``run``/``run_batch``: (query, spawned seed sequence) -> integrator.
IntegratorFactory = Callable[
    [ProbabilisticRangeQuery, np.random.SeedSequence], ProbabilityIntegrator
]


@dataclass(frozen=True)
class QueryResult:
    """Sorted result ids plus execution statistics."""

    ids: tuple[int, ...]
    stats: QueryStats

    @functools.cached_property
    def _id_set(self) -> frozenset[int]:
        # Built lazily on first membership test and reused: ids is
        # immutable, so rebuilding a set per `in` would be pure waste.
        return frozenset(self.ids)

    def __len__(self) -> int:
        return len(self.ids)

    def __contains__(self, obj_id: int) -> bool:
        return obj_id in self._id_set


@dataclass(frozen=True)
class BatchResult:
    """Per-query results (input order) plus batch-level statistics."""

    results: tuple[QueryResult, ...]
    stats: BatchStats

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[QueryResult]:
        return iter(self.results)

    def __getitem__(self, i: int) -> QueryResult:
        return self.results[i]

    @property
    def ids(self) -> tuple[tuple[int, ...], ...]:
        """The result id tuples, one per query, in input order."""
        return tuple(r.ids for r in self.results)


@dataclass(frozen=True)
class QueryPlan:
    """The output of :meth:`QueryEngine.explain`."""

    strategies: tuple[str, ...]
    descriptions: tuple[str, ...]
    search_rect: Rect | None
    proves_empty: str | None
    predicted_candidates: float | None

    def render(self) -> str:
        lines = [f"strategies: {' + '.join(self.strategies)}"]
        lines.extend(f"  {text}" for text in self.descriptions)
        if self.proves_empty:
            lines.append(f"result proven empty by {self.proves_empty}")
        elif self.search_rect is not None:
            lines.append(f"phase-1 search rectangle: {self.search_rect!r}")
        if self.predicted_candidates is not None:
            lines.append(
                f"predicted phase-3 candidates: {self.predicted_candidates:.1f}"
            )
        return "\n".join(lines)


class QueryEngine:
    """Executes probabilistic range queries over a spatial index.

    Parameters
    ----------
    index:
        Any :class:`repro.index.SpatialIndex` holding the target objects.
    strategies:
        Filtering strategies to combine; must be non-empty (the strategies
        also supply the Phase-1 search region).
    integrator:
        Phase-3 probability evaluator; defaults to the paper's importance
        sampling with 100,000 samples.
    """

    def __init__(
        self,
        index: SpatialIndex,
        strategies: list[Strategy],
        integrator: ProbabilityIntegrator | None = None,
        *,
        phase1: str = "intersect",
    ):
        if not strategies:
            raise QueryError("at least one strategy is required")
        if phase1 not in ("intersect", "primary"):
            raise QueryError(
                f"phase1 must be 'intersect' or 'primary', got {phase1!r}"
            )
        self.index = index
        self.strategies = list(strategies)
        self.integrator = integrator or ImportanceSamplingIntegrator()
        #: Phase-1 policy.  ``"intersect"`` (default) intersects every
        #: strategy's rectangle; ``"primary"`` searches only the first
        #: strategy's rectangle, exactly as the paper's Algorithms 1 and 2
        #: do (the remaining strategies act purely as Phase-2 filters).
        self.phase1 = phase1

    def execute(self, query: ProbabilisticRangeQuery) -> QueryResult:
        return self._execute_with(query, self.strategies, self.integrator)

    def run(
        self,
        queries: Sequence[ProbabilisticRangeQuery],
        *,
        base_seed: int = 0,
        integrator_factory: IntegratorFactory | None = None,
    ) -> BatchResult:
        """Execute a query batch sequentially with per-query RNG streams.

        This is the reference semantics for :meth:`run_batch`: each query
        gets fresh strategy clones and an integrator forked from the
        ``i``-th spawn of ``SeedSequence(base_seed)``, so the outcome of
        query ``i`` is a pure function of (engine config, ``base_seed``,
        ``i``) — independent of every other query in the batch.

        ``integrator_factory(query, seed_seq)`` overrides the default
        fork of the engine's integrator, e.g. to tune an adaptive sampler
        to each query's own θ.
        """
        return self.run_batch(
            queries,
            workers=1,
            base_seed=base_seed,
            integrator_factory=integrator_factory,
        )

    def run_batch(
        self,
        queries: Sequence[ProbabilisticRangeQuery],
        *,
        workers: int = 1,
        base_seed: int = 0,
        integrator_factory: IntegratorFactory | None = None,
    ) -> BatchResult:
        """Execute independent queries, fanned out over a thread pool.

        Returns a :class:`BatchResult` whose ``results`` follow the input
        order.  Determinism contract: because every query owns its
        strategy clones and a seed spawned by position, the results are
        bit-identical for every ``workers`` value (and to :meth:`run`).
        The engine instance itself is never mutated, so one engine can
        serve many concurrent ``run_batch`` calls.
        """
        if workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        queries = list(queries)
        seeds = np.random.SeedSequence(base_seed).spawn(len(queries))

        def task(pair) -> QueryResult:
            query, seed = pair
            strategies = [s.clone() for s in self.strategies]
            if integrator_factory is not None:
                integrator = integrator_factory(query, seed)
            else:
                integrator = self.integrator.fork(seed)
            return self._execute_with(query, strategies, integrator)

        start = time.perf_counter()
        if workers == 1 or len(queries) <= 1:
            results = [task(pair) for pair in zip(queries, seeds)]
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                results = list(pool.map(task, zip(queries, seeds)))
        wall = time.perf_counter() - start

        batch = BatchStats(workers=workers, wall_seconds=wall)
        for result in results:
            batch.merge(result.stats)
        return BatchResult(tuple(results), batch)

    def prepare_search(
        self, query: ProbabilisticRangeQuery, stats: QueryStats
    ) -> Rect | None:
        """Prepare every strategy and return the combined Phase-1 rectangle.

        Returns ``None`` when some strategy proved the result empty (the
        reason is recorded in ``stats.empty_by_strategy``).
        """
        return self._prepare_search(query, self.strategies, stats)

    def filter_and_integrate(
        self,
        query: ProbabilisticRangeQuery,
        candidate_ids: list[int],
        points: np.ndarray,
        stats: QueryStats,
    ) -> QueryResult:
        """Phases 2 and 3 over an externally supplied candidate set.

        The strategies must already be prepared for ``query`` (as done by
        :meth:`prepare_search`); the monitoring session uses this to feed
        cached candidates instead of a fresh index search.
        """
        return self._filter_and_integrate(
            query, candidate_ids, points, stats, self.strategies, self.integrator
        )

    # ------------------------------------------------------------------
    # Internals parameterized by (strategies, integrator) so the batch
    # path can run with per-query clones while the single-query path
    # keeps using the engine's own instances.
    # ------------------------------------------------------------------

    def _execute_with(
        self,
        query: ProbabilisticRangeQuery,
        strategies: list[Strategy],
        integrator: ProbabilityIntegrator,
    ) -> QueryResult:
        stats = QueryStats()

        # ------------------------------------------------------ Phase 1
        with stats.time_phase("search"):
            search_rect = self._prepare_search(query, strategies, stats)
            if search_rect is None:
                return QueryResult((), stats)
            candidate_ids = self.index.range_search_rect(search_rect)
            stats.retrieved = len(candidate_ids)
            if not candidate_ids:
                return QueryResult((), stats)
            points = np.vstack([self.index.get(i) for i in candidate_ids])

        return self._filter_and_integrate(
            query, candidate_ids, points, stats, strategies, integrator
        )

    def _prepare_search(
        self,
        query: ProbabilisticRangeQuery,
        strategies: list[Strategy],
        stats: QueryStats,
    ) -> Rect | None:
        if query.dim != self.index.dim:
            raise QueryError(
                f"query dimension {query.dim} does not match index "
                f"dimension {self.index.dim}"
            )
        for strategy in strategies:
            strategy.prepare(query)
        for strategy in strategies:
            if strategy.proves_empty:
                stats.empty_by_strategy = strategy.name
                return None
        search_rect = self._combined_search_rect(strategies)
        if search_rect is None:
            stats.empty_by_strategy = "intersection"
        return search_rect

    def _filter_and_integrate(
        self,
        query: ProbabilisticRangeQuery,
        candidate_ids: list[int],
        points: np.ndarray,
        stats: QueryStats,
        strategies: list[Strategy],
        integrator: ProbabilityIntegrator,
    ) -> QueryResult:
        ids_arr = np.asarray(candidate_ids)

        # ------------------------------------------------------ Phase 2
        with stats.time_phase("filter"):
            undecided = np.ones(ids_arr.size, dtype=bool)
            accept_mask = np.zeros(ids_arr.size, dtype=bool)
            for strategy in strategies:
                if not np.any(undecided):
                    break
                codes = strategy.classify_many(points[undecided])
                rejected = codes == REJECT
                stats.note_rejections(strategy.name, int(np.count_nonzero(rejected)))
                idx = np.nonzero(undecided)[0]
                accept_mask[idx[codes == ACCEPT]] = True
                undecided[idx[rejected]] = False
                undecided[idx[codes == ACCEPT]] = False
            accepted = ids_arr[accept_mask].tolist()
            stats.accepted_without_integration = len(accepted)
            to_integrate = np.nonzero(undecided)[0]

        # ------------------------------------------------------ Phase 3
        # Decision-aware: the integrator only has to settle p >= θ per
        # candidate, so bound-based backends (the cascade) can decide most
        # of the block without ever computing a full probability.  The
        # base-class decide() is qualification_probabilities + the
        # estimate >= θ rule, so sampling integrators behave identically.
        with stats.time_phase("integrate"):
            stats.integrations = int(to_integrate.size)
            if to_integrate.size:
                accept, _, estimates = integrator.decide(
                    query.gaussian, points[to_integrate], query.delta, query.theta
                )
                for slot, result, is_accept in zip(to_integrate, estimates, accept):
                    stats.integration_samples += result.n_samples
                    stats.note_decision(result.method)
                    if is_accept:
                        accepted.append(ids_arr[slot])

        ids = tuple(int(i) for i in sorted(accepted))
        stats.results = len(ids)
        return QueryResult(ids, stats)

    def explain(
        self, query: ProbabilisticRangeQuery, *, estimator=None
    ) -> "QueryPlan":
        """Describe how this engine would process ``query`` without running
        Phase 3.

        Returns a :class:`QueryPlan` with each strategy's derived geometry
        (region radii/half-widths), the combined Phase-1 rectangle, and —
        when a :class:`repro.core.selectivity.SelectivityEstimator` is
        supplied — the predicted Phase-3 candidate count.
        """
        stats = QueryStats()
        rect = self.prepare_search(query, stats)
        descriptions: list[str] = []
        for strategy in self.strategies:
            if strategy.name == "RR":
                region = strategy.region  # type: ignore[attr-defined]
                widths = (region.core.extents / 2.0).round(3).tolist()
                descriptions.append(
                    f"RR: theta-region box half-widths {widths}, "
                    f"dilated by delta={region.delta:g}"
                )
            elif strategy.name == "OR":
                half = strategy.box.half_widths.round(3).tolist()  # type: ignore[attr-defined]
                descriptions.append(f"OR: oblique box half-widths {half}")
            elif strategy.name == "BF":
                upper = strategy.alpha_upper  # type: ignore[attr-defined]
                lower = strategy.alpha_lower  # type: ignore[attr-defined]
                descriptions.append(
                    "BF: prune beyond "
                    + (f"{upper:.3f}" if upper is not None else "— (empty result)")
                    + ", accept within "
                    + (f"{lower:.3f}" if lower is not None else "— (no hole)")
                )
        predicted = None
        if estimator is not None and rect is not None:
            predicted = estimator.estimate_candidates(
                query, list(self.strategies)
            )
        return QueryPlan(
            strategies=tuple(s.name for s in self.strategies),
            descriptions=tuple(descriptions),
            search_rect=rect,
            proves_empty=stats.empty_by_strategy,
            predicted_candidates=predicted,
        )

    def _combined_search_rect(self, strategies: list[Strategy]) -> Rect | None:
        """The Phase-1 rectangle per the engine's policy; ``None`` if empty."""
        rect: Rect | None = None
        for strategy in strategies:
            contribution = strategy.search_rect()
            if contribution is None:
                continue
            if self.phase1 == "primary":
                return contribution  # the first contributing strategy wins
            rect = contribution if rect is None else rect.intersection(contribution)
            if rect is None:
                return None
        if rect is None:
            raise QueryError(
                "no strategy contributed a Phase-1 search region; include RR, "
                "OR, EM or BF"
            )
        return rect

"""User-facing façade: a spatial database of exact points.

``SpatialDatabase`` owns the point set and a spatial index and exposes the
paper's query types with one call each:

- :meth:`range_query` — the classical distance range query;
- :meth:`knn` — k nearest neighbours;
- :meth:`probabilistic_range_query` — PRQ(q, δ, θ) with any strategy
  combination and integrator.

The default configuration matches the paper's experimental setup: an
R*-tree index, all three strategies combined, and importance sampling with
100,000 samples per candidate.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core import storage
from repro.core.engine import QueryEngine, QueryResult
from repro.core.planner import QueryPlanner
from repro.core.query import ProbabilisticRangeQuery
from repro.core.selectivity import SelectivityEstimator
from repro.core.strategies import Strategy, make_strategies
from repro.geometry.mbr import Rect
from repro.errors import DatabaseLoadError, QueryError
from repro.gaussian.distribution import Gaussian
from repro.index.base import SpatialIndex
from repro.index.rtree import RStarTree
from repro.integrate.base import ProbabilityIntegrator

__all__ = ["SpatialDatabase"]

_ArrayLike = Sequence[float] | np.ndarray


class SpatialDatabase:
    """A collection of exact d-dimensional points with spatial querying.

    Parameters
    ----------
    points:
        (n, d) array of object locations.
    ids:
        Optional object ids (default 0..n−1); must be unique.
    index:
        A pre-built empty index to load into; defaults to an R*-tree.
    target_table:
        Optional :class:`repro.core.kinds.TargetCovarianceTable` mapping
        object ids to target covariances.  Required for executing
        :class:`repro.core.kinds.UncertainTargetQuery` — every engine
        built from this database carries it.
    """

    def __init__(
        self,
        points: np.ndarray,
        ids: Iterable[int] | None = None,
        index: SpatialIndex | None = None,
        *,
        defer_index: bool = False,
        target_table=None,
        _backing=None,
    ):
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise QueryError(
                f"points must be a non-empty (n, d) array, got shape {pts.shape}"
            )
        if ids is None:
            id_arr = np.arange(pts.shape[0], dtype=np.int64)
        else:
            if not isinstance(ids, (np.ndarray, list, tuple)):
                ids = list(ids)
            id_arr = np.asarray(ids, dtype=np.int64)
        if id_arr.shape != (pts.shape[0],):
            raise QueryError(
                f"{id_arr.size} ids provided for {pts.shape[0]} points"
            )
        if index is not None:
            if len(index) != 0:
                raise QueryError(
                    "index must be empty; the database loads it itself"
                )
            if index.dim != pts.shape[1]:
                raise QueryError(
                    f"index dimension {index.dim} does not match points "
                    f"dimension {pts.shape[1]}"
                )
        if target_table is not None and target_table.dim != pts.shape[1]:
            raise QueryError(
                f"target covariance dimension {target_table.dim} does not "
                f"match points dimension {pts.shape[1]}"
            )
        self._points = pts
        self._ids = id_arr
        self._target_table = target_table
        self._backing = _backing  # keeps a memory-mapped store file alive
        self._pending_index = index
        self._built_index: SpatialIndex | None = None
        self._default_planner: QueryPlanner | None = None
        if not defer_index:
            self._ensure_index()

    def _ensure_index(self) -> SpatialIndex:
        """Build the spatial index on first use (deferred for O(1) load)."""
        if self._built_index is None:
            index = self._pending_index
            if index is None:
                index = RStarTree(self._points.shape[1])
            index.bulk_load([int(i) for i in self._ids], self._points)
            self._built_index = index
            self._pending_index = None
        return self._built_index

    @property
    def index(self) -> SpatialIndex:
        return self._ensure_index()

    @property
    def ids(self) -> np.ndarray:
        """Object ids, aligned with :attr:`points` rows.  Do not mutate."""
        return self._ids

    @property
    def points(self) -> np.ndarray:
        """(n, d) object locations (possibly memory-mapped).  Do not mutate."""
        return self._points

    @property
    def targets(self):
        """The registered target covariance table, or ``None``."""
        return self._target_table

    @property
    def dim(self) -> int:
        return self._points.shape[1]

    def __len__(self) -> int:
        return self._points.shape[0]

    def point(self, obj_id: int) -> np.ndarray:
        """Location of one object."""
        return self.index.get(obj_id)

    # ------------------------------------------------------------------
    # Classical queries
    # ------------------------------------------------------------------

    def range_query(self, center: _ArrayLike, radius: float) -> list[int]:
        """Ids within ``radius`` of ``center`` (the paper's baseline query)."""
        return self.index.range_search_sphere(center, radius)

    def knn(self, center: _ArrayLike, k: int) -> list[tuple[int, float]]:
        """The k nearest (id, distance) pairs, nearest first."""
        return self.index.knn(center, k)

    # ------------------------------------------------------------------
    # Probabilistic range queries
    # ------------------------------------------------------------------

    def probabilistic_range_query(
        self,
        gaussian: Gaussian | None = None,
        delta: float = 0.0,
        theta: float = 0.0,
        *,
        center: _ArrayLike | None = None,
        sigma: np.ndarray | None = None,
        strategies: str | list[Strategy] = "all",
        integrator: ProbabilityIntegrator | None = None,
        obs=None,
    ) -> QueryResult:
        """Run PRQ(q, δ, θ).

        Either pass a ready :class:`Gaussian` or ``center=``/``sigma=``.
        ``strategies`` is a spec string (``"rr"``, ``"bf"``, ``"rr+bf"``,
        ``"rr+or"``, ``"bf+or"``, ``"all"``), the adaptive ``"auto"``
        (cost-based planning per query), or an explicit strategy list.
        ``obs`` is an optional :class:`repro.obs.Observability` sink.
        """
        if gaussian is None:
            if center is None or sigma is None:
                raise QueryError(
                    "provide either a Gaussian or both center= and sigma="
                )
            gaussian = Gaussian(center, sigma)
        query = ProbabilisticRangeQuery(gaussian, delta, theta)
        engine = self.engine(
            strategies=strategies, integrator=integrator, obs=obs
        )
        return engine.execute(query)

    def engine(
        self,
        *,
        strategies: str | list[Strategy] = "all",
        integrator: ProbabilityIntegrator | None = None,
        phase1: str = "intersect",
        obs=None,
    ) -> QueryEngine:
        """A reusable engine (hold on to it when running many queries).

        ``phase1="primary"`` reproduces the paper's Algorithms 1/2 exactly:
        only the first strategy's rectangle drives the index search.
        ``strategies="auto"`` attaches the database's shared
        :class:`QueryPlanner` so every query runs the cheapest plan under
        the planner's cost model (the "all" list remains as the fallback
        for the helper entry points).  ``obs`` attaches a
        :class:`repro.obs.Observability` sink: spans and metrics for every
        query the engine runs, with no effect on results.
        """
        planner = None
        if isinstance(strategies, str) and strategies.lower() == "auto":
            planner = self.planner()
            strategy_list = make_strategies("all")
        else:
            strategy_list = (
                make_strategies(strategies)
                if isinstance(strategies, str)
                else list(strategies)
            )
        return QueryEngine(
            self.index,
            strategy_list,
            integrator,
            phase1=phase1,
            planner=planner,
            obs=obs,
            targets=self._target_table,
        )

    def planner(self, **kwargs) -> QueryPlanner:
        """The database's shared cost-based query planner.

        Built lazily on first use (a d ≤ 3 database also gets a
        :class:`SelectivityEstimator` over its points; higher dimensions
        fall back to uniform-density predictions) and cached so the plan
        cache warms across engines.  Keyword arguments are forwarded to
        :class:`QueryPlanner` and force a fresh, *uncached* planner —
        useful for custom cost models or strategy menus.
        """
        if kwargs:
            return self._build_planner(**kwargs)
        if self._default_planner is None:
            self._default_planner = self._build_planner()
        return self._default_planner

    def _build_planner(self, **kwargs) -> QueryPlanner:
        points = self._points
        bounds = Rect(points.min(axis=0), points.max(axis=0))
        if "estimator" not in kwargs and self.dim <= 3:
            kwargs["estimator"] = SelectivityEstimator(points)
        kwargs.setdefault("total_points", points.shape[0])
        kwargs.setdefault("data_bounds", bounds)
        kwargs.setdefault("targets", self._target_table)
        return QueryPlanner(**kwargs)

    def top_k_by_probability(
        self,
        gaussian: Gaussian,
        delta: float,
        k: int,
        *,
        integrator: ProbabilityIntegrator | None = None,
        theta_floor: float = 1e-3,
    ) -> list[tuple[int, float]]:
        """The k objects most likely to lie within ``delta`` of the query.

        A ranking variant of PRQ: instead of a probability threshold, the
        caller asks for the top k objects by qualification probability,
        with the probabilities returned.  Processing starts from a
        generous region (θ = ``theta_floor``) and enlarges it geometrically
        until the k-th best probability provably dominates everything
        outside the region, so the ranking is exact (up to the integrator's
        own error).  Probabilities below 1e-12 are treated as zero; when
        fewer than k objects have non-negligible probability, fewer than k
        pairs are returned.
        """
        from repro.core.strategies import REJECT

        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        if not 0.0 < theta_floor < 0.5:
            raise QueryError(
                f"theta_floor must lie in (0, 1/2), got {theta_floor}"
            )
        evaluator = integrator
        if evaluator is None:
            from repro.integrate.exact import ExactIntegrator

            evaluator = ExactIntegrator()
        theta = theta_floor
        while True:
            query = ProbabilisticRangeQuery(gaussian, delta, theta)
            # RR+OR only: neither strategy ACCEPTs, so every surviving
            # candidate gets an actual probability for the ranking.
            strategies = make_strategies("rr+or")
            engine = QueryEngine(self.index, strategies, evaluator)
            from repro.core.stats import QueryStats

            stats = QueryStats()
            rect = engine.prepare_search(query, stats)
            candidate_ids = (
                self.index.range_search_rect(rect) if rect is not None else []
            )
            scored: list[tuple[int, float]] = []
            if candidate_ids:
                points = np.vstack([self.index.get(i) for i in candidate_ids])
                undecided = np.ones(len(candidate_ids), dtype=bool)
                for strategy in strategies:
                    codes = strategy.classify(points[undecided])
                    idx = np.nonzero(undecided)[0]
                    undecided[idx[codes == REJECT]] = False
                keep = np.nonzero(undecided)[0]
                estimates = evaluator.qualification_probabilities(
                    gaussian, points[keep], delta
                )
                scored = [
                    (candidate_ids[slot], result.estimate)
                    for slot, result in zip(keep, estimates)
                ]
            scored.sort(key=lambda pair: (-pair[1], pair[0]))
            kth_probability = scored[k - 1][1] if len(scored) >= k else 0.0
            # Everything outside the theta-region has probability < theta;
            # once the k-th in-region probability reaches theta the top-k
            # cannot change by enlarging further.  Below 1e-12 the tail is
            # numerically zero and expansion stops.
            if kth_probability >= theta or theta <= 1e-12:
                return scored[:k]
            theta = max(theta * theta, 1e-12)  # enlarge geometrically

    # ------------------------------------------------------------------
    # Sharding
    # ------------------------------------------------------------------

    def shard(
        self,
        n_shards: int,
        *,
        method: str = "str",
        workers: int | None = None,
        start_method: str | None = None,
    ):
        """Partition this database across ``n_shards`` worker processes.

        Returns a :class:`repro.shard.ShardedDatabase`: the points move
        into shared memory, each shard gets its own R*-tree inside a
        long-lived worker process, and every engine built from it
        scatter-gathers queries across the shards whose MBR intersects
        the query's Phase-1 rectangle (``docs/sharding.md``).  ``method``
        picks the partitioning order (``"str"`` or ``"hilbert"``);
        ``workers`` caps the process count (default: one per shard).
        Close the returned database (it is a context manager) to stop
        the pool and release the shared memory::

            with db.shard(4) as sharded:
                batch = sharded.engine().run_batch(queries)
        """
        from repro.shard import ShardedDatabase

        return ShardedDatabase(
            self,
            n_shards,
            method=method,
            workers=workers,
            start_method=start_method,
        )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def serve(self, config=None, **knobs):
        """Start an embedded :class:`repro.serve.QueryService` over this
        database.

        The service owns a warm engine plus a scheduler thread that
        coalesces concurrent :class:`repro.serve.PRQRequest` submissions
        into micro-batches, with admission control, deadline-aware
        degradation and a keyed result cache (see ``docs/serving.md``).
        Pass a :class:`repro.serve.ServiceConfig` or its keyword knobs::

            with db.serve(max_batch=16, batch_window=0.005) as service:
                response = service.query(PRQRequest(gaussian, 10.0, 0.5))

        Close it (or use it as a context manager) to drain and stop.
        """
        from repro.serve import QueryService

        return QueryService(self, config, **knobs)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path, *, format: str = "soa") -> None:
        """Persist ids and points; the index is rebuilt lazily on load.

        The default ``format="soa"`` writes the versioned memory-mapped
        structure-of-arrays file of :mod:`repro.core.storage`, which
        :meth:`load` maps in O(1) without reading the data.
        ``format="npz"`` writes the legacy compressed archive.

        .. deprecated::
            ``format="npz"`` is kept for one release as a compatibility
            escape hatch; new code should use the default.  Legacy
            archives will remain *loadable* indefinitely.
        """
        if format == "soa":
            storage.write_soa(path, self._ids, self._points)
        elif format == "npz":
            np.savez_compressed(path, ids=self._ids, points=self._points)
        else:
            raise QueryError(
                f"unknown save format {format!r}; use 'soa' or 'npz'"
            )

    @classmethod
    def load(cls, path, index: SpatialIndex | None = None) -> "SpatialDatabase":
        """Open a database saved with :meth:`save`.

        The file format is sniffed from the content: structure-of-arrays
        store files are memory-mapped — an O(1) operation with the index
        built lazily on first query — while legacy ``.npz`` archives load
        through the original decompress-and-copy migration path.

        Raises :class:`repro.errors.DatabaseLoadError` — naming the path
        and the underlying failure — when the file is missing, truncated
        or otherwise corrupt, instead of leaking a raw IO/unzip traceback
        from NumPy's archive reader.
        """
        if storage.is_soa_file(path):
            store = storage.open_soa(path)
            try:
                return cls(
                    store.points,
                    ids=store.ids,
                    index=index,
                    defer_index=True,
                    _backing=store,
                )
            except (QueryError, TypeError, ValueError) as exc:
                raise DatabaseLoadError(
                    path, f"store contents are invalid ({exc})"
                ) from exc
        return cls._load_npz(path, index)

    @classmethod
    def _load_npz(cls, path, index: SpatialIndex | None) -> "SpatialDatabase":
        """Migration shim for legacy compressed ``.npz`` archives."""
        import zipfile

        try:
            with np.load(path) as archive:
                try:
                    ids = archive["ids"]
                    points = archive["points"]
                except KeyError as exc:
                    raise DatabaseLoadError(
                        path, f"not a SpatialDatabase archive (missing {exc})"
                    ) from exc
        except DatabaseLoadError:
            raise
        except FileNotFoundError as exc:
            raise DatabaseLoadError(path, "file does not exist") from exc
        except (OSError, zipfile.BadZipFile, EOFError, ValueError) as exc:
            # np.load raises ValueError on truncated headers/pickles and
            # BadZipFile/EOFError/OSError on torn .npz containers.
            raise DatabaseLoadError(
                path, f"truncated or corrupt archive ({exc})"
            ) from exc
        try:
            return cls(points, ids=[int(i) for i in ids], index=index)
        except (QueryError, TypeError, ValueError) as exc:
            raise DatabaseLoadError(
                path, f"archive contents are invalid ({exc})"
            ) from exc

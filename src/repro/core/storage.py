"""Versioned memory-mapped structure-of-arrays database files.

The legacy ``SpatialDatabase.save`` format was a compressed ``.npz``
archive: loading decompresses and copies every byte, so startup cost is
O(data) and shard workers each need their own copy of the pages.  This
module defines the replacement — a flat binary layout that ``np.memmap``
can expose without reading the arrays at all:

====== ======= ==================================================
offset size    contents
====== ======= ==================================================
0      8       magic ``b"RPROSOA1"``
8      4       format version (little-endian u32, currently 1)
12     4       dimensionality d (u32)
16     8       point count n (u64)
24     8       ids column offset (u64, 64-byte aligned)
32     8       points column offset (u64, 64-byte aligned)
40     24      reserved (zero)
====== ======= ==================================================

followed by the ids column (n × int64) and the points column
(n × d × float64, row-major), each starting on a 64-byte boundary.  All
values are little-endian.  Opening a store validates the header and the
file size but touches no data pages — ``SpatialDatabase.load`` is O(1)
regardless of n — and the mapped columns are shared read-only by every
process that opens the same file (``repro.shard`` serves workers straight
from the mapping).
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.errors import DatabaseLoadError

__all__ = [
    "SOA_MAGIC",
    "SOA_VERSION",
    "SoaStore",
    "is_soa_file",
    "open_soa",
    "write_soa",
]

SOA_MAGIC = b"RPROSOA1"
SOA_VERSION = 1

#: magic, version, dim, n, ids_offset, points_offset, 24 reserved bytes.
_HEADER = struct.Struct("<8sIIQQQ24x")
_ALIGN = 64

assert _HEADER.size == _ALIGN


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class SoaStore:
    """A read-only view over one store file: header fields + mapped columns.

    ``ids`` and ``points`` are ``np.memmap`` arrays (mode ``"r"``): the
    OS pages them in on first touch and shares the physical pages between
    every process mapping the same file.
    """

    def __init__(self, path, n: int, dim: int, ids_offset: int, points_offset: int):
        self.path = str(path)
        self.n = n
        self.dim = dim
        self.ids_offset = ids_offset
        self.points_offset = points_offset
        self.ids = np.memmap(
            self.path, dtype="<i8", mode="r", offset=ids_offset, shape=(n,)
        )
        self.points = np.memmap(
            self.path, dtype="<f8", mode="r", offset=points_offset, shape=(n, dim)
        )

    def __repr__(self) -> str:
        return f"SoaStore(path={self.path!r}, n={self.n}, dim={self.dim})"


def write_soa(path, ids: np.ndarray, points: np.ndarray) -> None:
    """Write ids/points as one versioned, aligned structure-of-arrays file."""
    pts = np.ascontiguousarray(points, dtype="<f8")
    id_arr = np.ascontiguousarray(ids, dtype="<i8")
    n, dim = pts.shape
    ids_offset = _align(_HEADER.size)
    points_offset = _align(ids_offset + id_arr.nbytes)
    header = _HEADER.pack(
        SOA_MAGIC, SOA_VERSION, dim, n, ids_offset, points_offset
    )
    with open(path, "wb") as fh:
        fh.write(header)
        fh.write(b"\0" * (ids_offset - fh.tell()))
        fh.write(id_arr.tobytes())
        fh.write(b"\0" * (points_offset - ids_offset - id_arr.nbytes))
        fh.write(pts.tobytes())


def is_soa_file(path) -> bool:
    """True when ``path`` starts with the store magic (format sniffing)."""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(SOA_MAGIC)) == SOA_MAGIC
    except OSError:
        return False


def open_soa(path) -> SoaStore:
    """Map an existing store file; O(1) — no data pages are read.

    Raises :class:`repro.errors.DatabaseLoadError` naming the path for a
    missing file, a short or garbled header, an unsupported version, or a
    file too small to hold the columns its header promises.
    """
    try:
        size = Path(path).stat().st_size
        with open(path, "rb") as fh:
            raw = fh.read(_HEADER.size)
    except FileNotFoundError as exc:
        raise DatabaseLoadError(path, "file does not exist") from exc
    except OSError as exc:
        raise DatabaseLoadError(path, f"truncated or corrupt store ({exc})") from exc
    if len(raw) < _HEADER.size:
        raise DatabaseLoadError(
            path,
            f"truncated or corrupt store (header is {len(raw)} bytes, "
            f"need {_HEADER.size})",
        )
    magic, version, dim, n, ids_offset, points_offset = _HEADER.unpack(raw)
    if magic != SOA_MAGIC:
        raise DatabaseLoadError(
            path, f"not a SpatialDatabase store (bad magic {magic!r})"
        )
    if version != SOA_VERSION:
        raise DatabaseLoadError(
            path,
            f"unsupported store version {version} (this build reads "
            f"version {SOA_VERSION})",
        )
    if n == 0 or dim == 0:
        raise DatabaseLoadError(
            path, f"truncated or corrupt store (n={n}, dim={dim})"
        )
    end = points_offset + n * dim * 8
    if ids_offset < _HEADER.size or points_offset < ids_offset + n * 8 or size < end:
        raise DatabaseLoadError(
            path,
            f"truncated or corrupt store (file holds {size} bytes, "
            f"columns need {end})",
        )
    try:
        return SoaStore(path, n, dim, ids_offset, points_offset)
    except (OSError, ValueError) as exc:
        raise DatabaseLoadError(
            path, f"truncated or corrupt store ({exc})"
        ) from exc

"""The three filtering strategies of Section IV behind one interface.

Every strategy is *prepared* once per query and then offers two services
to the engine:

1. a Phase-1 **search rectangle** — the engine intersects the rectangles
   of all active strategies and runs one R-tree range search;
2. a Phase-2 **classification** of candidate points into three classes:

   - ``REJECT`` — provably fails the query; dropped without integration;
   - ``ACCEPT`` — provably satisfies the query (only BF can do this, via
     its lower bounding function); added to the result without integration;
   - ``UNKNOWN`` — needs Phase-3 numerical integration.

Soundness of every REJECT/ACCEPT follows from the paper's Properties 1–5
together with the conservative catalog lookups.
"""

from __future__ import annotations

import abc
import copy

import numpy as np

from repro import kernels
from repro.catalog.bf import BFLookup, alpha_radii
from repro.catalog.rtheta import ExactRThetaLookup, RThetaLookup
from repro.errors import CatalogError, QueryError
from repro.geometry.mbr import Rect
from repro.geometry.minkowski import MinkowskiRegion
from repro.geometry.obliquebox import ObliqueBox
from repro.core.query import ProbabilisticRangeQuery

__all__ = [
    "ACCEPT",
    "REJECT",
    "UNKNOWN",
    "Strategy",
    "RectilinearStrategy",
    "ObliqueStrategy",
    "BoundingFunctionStrategy",
    "EllipsoidStrategy",
    "make_strategies",
    "STRATEGY_COMBINATIONS",
]

#: Classification codes returned by :meth:`Strategy.classify`.
REJECT: int = -1
UNKNOWN: int = 0
ACCEPT: int = 1


class Strategy(abc.ABC):
    """One filtering strategy, prepared per query."""

    #: Short name used in statistics and reports ("RR", "OR", "BF").
    name: str = "abstract"

    @abc.abstractmethod
    def prepare(self, query: ProbabilisticRangeQuery) -> None:
        """Derive per-query state (regions, radii).  Must be called first."""

    @abc.abstractmethod
    def search_rect(self) -> Rect | None:
        """Phase-1 rectangle, or ``None`` if this strategy offers none."""

    @abc.abstractmethod
    def classify(self, points: np.ndarray) -> np.ndarray:
        """Phase-2 decision per candidate row: ACCEPT / REJECT / UNKNOWN."""

    def classify_many(self, points: np.ndarray) -> np.ndarray:
        """Classify a whole (n, d) candidate array in one call.

        The engine's batch path always goes through this method.  The base
        implementation falls back to the scalar path — one
        :meth:`classify` call per row — so a subclass only has to
        implement per-point logic to be correct; the built-in strategies
        all override it with a single vectorised pass.
        """
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        if pts.shape[0] == 0:
            return np.empty(0, dtype=np.int8)
        return np.concatenate(
            [np.atleast_1d(self.classify(row)).astype(np.int8) for row in pts]
        )

    def classify_candidates(
        self, ids: np.ndarray, points: np.ndarray
    ) -> np.ndarray:
        """Classify candidates given their object ids alongside the points.

        The stage pipeline's Phase 2 always calls this entry point.  The
        paper's strategies are pure functions of the candidate *location*,
        so the default ignores ``ids`` and delegates to
        :meth:`classify_many`; kind adapters that keep per-object state
        (e.g. the per-target covariance groups of
        :class:`repro.core.kinds.ConvolvedTargetStrategy`) override it.
        """
        return self.classify_many(points)

    def clone(self) -> "Strategy":
        """An unprepared copy sharing configuration (lookups) but no
        per-query state.

        ``run_batch`` clones the engine's strategy templates once per
        query so concurrent workers never share mutable ``prepare`` state.
        The default shallow copy is correct for strategies whose only
        shared attributes are immutable configuration; override if a
        subclass holds mutable shared state.
        """
        return copy.copy(self)

    @property
    def proves_empty(self) -> bool:
        """True when preparation proved the whole result set is empty."""
        return False

    def _require_prepared(self, attr: str) -> None:
        if getattr(self, attr, None) is None:
            raise QueryError(f"{self.name} strategy used before prepare()")


class RectilinearStrategy(Strategy):
    """RR (Section IV-A): θ-region bounding box ⊕ δ-ball, with fringe filter.

    Parameters
    ----------
    lookup:
        Source of r_θ values; defaults to the exact closed form.  Pass an
        :class:`repro.catalog.RThetaCatalog` for the paper's table-driven
        behaviour.
    fringe_filter:
        ``"exact"`` applies the exact rounded-region membership test in any
        dimension; ``"paper"`` restricts the fringe filter to d = 2 as the
        paper does ("computation of fringe part is not easy for d >= 3");
        ``"off"`` disables Phase-2 filtering entirely (search box only).
    """

    name = "RR"

    def __init__(
        self, lookup: RThetaLookup | None = None, *, fringe_filter: str = "exact"
    ):
        if fringe_filter not in ("exact", "paper", "off"):
            raise QueryError(
                f"fringe_filter must be 'exact', 'paper' or 'off', got {fringe_filter!r}"
            )
        self._lookup = lookup
        self.fringe_filter = fringe_filter
        self._region: MinkowskiRegion | None = None

    @property
    def region(self) -> MinkowskiRegion:
        self._require_prepared("_region")
        return self._region

    def prepare(self, query: ProbabilisticRangeQuery) -> None:
        lookup = self._lookup or ExactRThetaLookup(query.dim)
        if lookup.dim != query.dim:
            raise QueryError(
                f"r_theta lookup is for dimension {lookup.dim}, query has {query.dim}"
            )
        r_theta = lookup.r_theta(query.region_theta)
        core_box = query.gaussian.contour(r_theta).bounding_rect()
        self._region = MinkowskiRegion(core_box, query.delta)

    def search_rect(self) -> Rect:
        return self.region.bounding_rect()

    def classify(self, points: np.ndarray) -> np.ndarray:
        region = self.region
        n = np.atleast_2d(points).shape[0]
        codes = np.full(n, UNKNOWN, dtype=np.int8)
        if self.fringe_filter == "off":
            return codes
        if self.fringe_filter == "paper" and region.dim != 2:
            return codes
        codes[~region.contains_points(points)] = REJECT
        return codes

    def classify_many(self, points: np.ndarray) -> np.ndarray:
        region = self.region
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        codes = np.full(pts.shape[0], UNKNOWN, dtype=np.int8)
        if self.fringe_filter == "off":
            return codes
        if self.fringe_filter == "paper" and region.dim != 2:
            return codes
        contains = kernels.minkowski_contains(
            pts, region.core.lows, region.core.highs, region.delta
        )
        codes[~contains] = REJECT
        return codes


class ObliqueStrategy(Strategy):
    """OR (Section IV-B): eigenbasis-aligned box inflated by δ.

    Primarily a Phase-2 filter (the paper notes its world-axis bounding box
    is generally large), but the bounding rectangle is still offered to
    Phase 1 so an OR-only configuration remains executable.
    """

    name = "OR"

    def __init__(self, lookup: RThetaLookup | None = None):
        self._lookup = lookup
        self._box: ObliqueBox | None = None

    @property
    def box(self) -> ObliqueBox:
        self._require_prepared("_box")
        return self._box

    def prepare(self, query: ProbabilisticRangeQuery) -> None:
        lookup = self._lookup or ExactRThetaLookup(query.dim)
        if lookup.dim != query.dim:
            raise QueryError(
                f"r_theta lookup is for dimension {lookup.dim}, query has {query.dim}"
            )
        r_theta = lookup.r_theta(query.region_theta)
        self._box = ObliqueBox.for_range_query(
            query.center, query.gaussian.sigma, r_theta, query.delta
        )

    def search_rect(self) -> Rect:
        return self.box.bounding_rect()

    def classify(self, points: np.ndarray) -> np.ndarray:
        n = np.atleast_2d(points).shape[0]
        codes = np.full(n, UNKNOWN, dtype=np.int8)
        codes[~self.box.contains_points(points)] = REJECT
        return codes

    def classify_many(self, points: np.ndarray) -> np.ndarray:
        box = self.box
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        codes = np.full(pts.shape[0], UNKNOWN, dtype=np.int8)
        contains = kernels.oblique_contains(
            pts, box.center, box.transform.basis, box.half_widths
        )
        codes[~contains] = REJECT
        return codes


class BoundingFunctionStrategy(Strategy):
    """BF (Section IV-C): spherical bounding functions give α∥ and α⊥.

    After preparation:

    - objects farther than ``alpha_upper`` from q are rejected — even the
      upper bounding function p∥ cannot reach mass θ there (Fig. 11);
    - objects nearer than ``alpha_lower`` are accepted without integration
      — already the lower bounding function p⊥ guarantees mass θ;
    - ``alpha_upper is None`` proves the result empty;
    - ``alpha_lower is None`` reproduces the missing "inner hole" of the
      ill-shaped high-dimensional case (Section VI).
    """

    name = "BF"

    def __init__(self, lookup: BFLookup | None = None):
        self._lookup = lookup
        self._prepared = False
        self._center: np.ndarray | None = None
        self.alpha_upper: float | None = None
        self.alpha_lower: float | None = None

    def prepare(self, query: ProbabilisticRangeQuery) -> None:
        try:
            self.alpha_upper, self.alpha_lower = alpha_radii(
                query.gaussian, query.delta, query.theta, self._lookup
            )
        except CatalogError as exc:
            raise QueryError(str(exc)) from exc
        self._center = query.gaussian.mean
        self._prepared = True

    @property
    def proves_empty(self) -> bool:
        if not self._prepared:
            raise QueryError("BF strategy used before prepare()")
        return self.alpha_upper is None

    def search_rect(self) -> Rect | None:
        if not self._prepared:
            raise QueryError("BF strategy used before prepare()")
        if self.alpha_upper is None:
            return None
        return Rect.from_center(
            self._center, np.full(self._center.size, self.alpha_upper)
        )

    def classify(self, points: np.ndarray) -> np.ndarray:
        if not self._prepared:
            raise QueryError("BF strategy used before prepare()")
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        codes = np.full(pts.shape[0], UNKNOWN, dtype=np.int8)
        deltas = pts - self._center
        distances = np.sqrt(np.einsum("ij,ij->i", deltas, deltas))
        if self.alpha_upper is None:
            codes[:] = REJECT
            return codes
        codes[distances > self.alpha_upper] = REJECT
        if self.alpha_lower is not None:
            codes[distances <= self.alpha_lower] = ACCEPT
        return codes

    def classify_many(self, points: np.ndarray) -> np.ndarray:
        if not self._prepared:
            raise QueryError("BF strategy used before prepare()")
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        if self.alpha_upper is None:
            return np.full(pts.shape[0], REJECT, dtype=np.int8)
        return kernels.bf_classify(
            pts, self._center, self.alpha_upper, self.alpha_lower
        )


class EllipsoidStrategy(Strategy):
    """EM (ours): filter directly with the θ-region ⊕ δ-ball region.

    The paper's Fig. 3 soundness argument never needs the bounding *box*:
    if ball(o, δ) misses the θ-region entirely, then (i) the two balls at
    o and its point reflection o′ through q are disjoint (overlap would
    put q inside ball(o, δ), contradicting q ∈ θ-region), and (ii) by
    point symmetry they carry equal mass, so each holds less than half of
    the 2θ outside the θ-region.  Hence ``dist(o, θ-region) > δ`` is a
    sound REJECT — a region contained in both the RR and OR regions, i.e.
    a strictly stronger geometric filter, at the cost of a per-candidate
    root find (:meth:`repro.geometry.ellipsoid.Ellipsoid.distance_to_surface`).
    """

    name = "EM"

    def __init__(self, lookup: RThetaLookup | None = None):
        self._lookup = lookup
        self._ellipsoid = None
        self._delta: float | None = None

    @property
    def ellipsoid(self):
        self._require_prepared("_ellipsoid")
        return self._ellipsoid

    def prepare(self, query: ProbabilisticRangeQuery) -> None:
        lookup = self._lookup or ExactRThetaLookup(query.dim)
        if lookup.dim != query.dim:
            raise QueryError(
                f"r_theta lookup is for dimension {lookup.dim}, query has {query.dim}"
            )
        r_theta = lookup.r_theta(query.region_theta)
        self._ellipsoid = query.gaussian.contour(r_theta)
        self._delta = query.delta

    def search_rect(self) -> Rect:
        return self.ellipsoid.bounding_rect().expand(self._delta)

    def classify(self, points: np.ndarray) -> np.ndarray:
        ellipsoid = self.ellipsoid
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        codes = np.full(pts.shape[0], UNKNOWN, dtype=np.int8)
        codes[ellipsoid.distance_to_surface(pts) > self._delta] = REJECT
        return codes

    def classify_many(self, points: np.ndarray) -> np.ndarray:
        return self.classify(points)  # already one vectorised pass


#: The six configurations evaluated in the paper (Section V-A), plus the
#: EM extensions of this library.
STRATEGY_COMBINATIONS: dict[str, tuple[str, ...]] = {
    "rr": ("RR",),
    "bf": ("BF",),
    "rr+bf": ("RR", "BF"),
    "rr+or": ("RR", "OR"),
    "bf+or": ("BF", "OR"),
    "all": ("RR", "BF", "OR"),
    "em": ("EM",),
    "em+bf": ("EM", "BF"),
}


def make_strategies(
    spec: str,
    *,
    rtheta_lookup: RThetaLookup | None = None,
    bf_lookup: BFLookup | None = None,
    fringe_filter: str = "exact",
) -> list[Strategy]:
    """Build the strategy list for one of the paper's six configurations.

    ``spec`` is one of ``rr``, ``bf``, ``rr+bf``, ``rr+or``, ``bf+or``,
    ``all`` (case-insensitive; order inside the spec does not matter).
    """
    key = "+".join(sorted(spec.lower().split("+")))
    normalized = {
        "+".join(sorted(k.split("+"))): names for k, names in STRATEGY_COMBINATIONS.items()
    }
    if key not in normalized:
        raise QueryError(
            f"unknown strategy spec {spec!r}; choose from "
            f"{sorted(STRATEGY_COMBINATIONS)}"
        )
    built: list[Strategy] = []
    for name in normalized[key]:
        if name == "RR":
            built.append(
                RectilinearStrategy(rtheta_lookup, fringe_filter=fringe_filter)
            )
        elif name == "OR":
            built.append(ObliqueStrategy(rtheta_lookup))
        elif name == "EM":
            built.append(EllipsoidStrategy(rtheta_lookup))
        else:
            built.append(BoundingFunctionStrategy(bf_lookup))
    return built

"""Probabilistic range queries for Gaussian-*mixture* query objects.

The sound reduction (see :mod:`repro.gaussian.mixture`): with mixture
weights summing to one, P_mix(o) = Σ wᵢ Pᵢ(o) <= max_i Pᵢ(o), so every
answer at threshold θ qualifies some component's single-Gaussian query at
the same θ.  Mixture queries execute through the unified stage pipeline:
:class:`repro.core.kinds.MixtureRangeQuery` carries the mixture,
:class:`repro.core.kinds.MixtureFilterStrategy` runs Phases 1+2 once per
component (unioning the per-component candidate sets), and
:class:`repro.core.kinds.MixtureDecider` evaluates each survivor's
*mixture* qualification probability (exact component-wise Ruben by
default) against θ in Phase 3.

Because the per-component filters are the paper's sound filters, no answer
can be lost; the only cost of multi-modality is evaluating more
candidates.  :class:`MixtureQueryEngine` remains as a thin convenience
wrapper that builds the kinded query and runs it through
:meth:`SpatialDatabase.engine`; new code can construct a
:class:`~repro.core.kinds.MixtureRangeQuery` directly and hand it to any
engine entry point (``execute``, ``run_batch``, ``repro.serve``,
``repro.shard``).
"""

from __future__ import annotations

from repro.core.database import SpatialDatabase
from repro.core.kinds import MixtureRangeQuery
from repro.core.stats import QueryStats
from repro.errors import QueryError
from repro.gaussian.mixture import GaussianMixture
from repro.integrate.base import ProbabilityIntegrator

__all__ = ["MixtureQueryEngine", "mixture_range_query"]


class MixtureQueryEngine:
    """PRQ processing for a :class:`GaussianMixture` query object.

    A convenience wrapper over the unified pipeline: ``execute`` builds a
    :class:`repro.core.kinds.MixtureRangeQuery` and runs it through the
    database's standard :class:`~repro.core.engine.QueryEngine`, so the
    result is identical to submitting the kinded query to any other
    entry point.

    Parameters
    ----------
    database:
        The exact-location targets.
    strategies:
        Strategy spec applied per component (``"all"`` by default).
    integrator:
        Optional Monte Carlo integrator for Phase 3; when omitted the
        mixture probability is computed exactly (component-wise Ruben).
    """

    def __init__(
        self,
        database: SpatialDatabase,
        *,
        strategies: str = "all",
        integrator: ProbabilityIntegrator | None = None,
    ):
        self._database = database
        self._spec = strategies
        self._integrator = integrator

    def execute(
        self, mixture: GaussianMixture, delta: float, theta: float
    ) -> tuple[list[int], QueryStats]:
        if mixture.dim != self._database.dim:
            raise QueryError(
                f"mixture dimension {mixture.dim} does not match database "
                f"dimension {self._database.dim}"
            )
        if not 0.0 < theta < 1.0:
            raise QueryError(f"theta must lie in (0, 1), got {theta}")
        integrator = self._integrator
        if integrator is None:
            from repro.integrate.exact import ExactIntegrator

            integrator = ExactIntegrator()
        query = MixtureRangeQuery.create(mixture, delta, theta)
        engine = self._database.engine(
            strategies=self._spec, integrator=integrator
        )
        result = engine.execute(query)
        return list(result.ids), result.stats


def mixture_range_query(
    database: SpatialDatabase,
    mixture: GaussianMixture,
    delta: float,
    theta: float,
    **kwargs,
) -> list[int]:
    """One-shot convenience wrapper around :class:`MixtureQueryEngine`."""
    engine = MixtureQueryEngine(database, **kwargs)
    ids, _ = engine.execute(mixture, delta, theta)
    return ids

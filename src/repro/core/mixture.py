"""Probabilistic range queries for Gaussian-*mixture* query objects.

The sound reduction (see :mod:`repro.gaussian.mixture`): with mixture
weights summing to one, P_mix(o) = Σ wᵢ Pᵢ(o) <= max_i Pᵢ(o), so every
answer at threshold θ qualifies some component's single-Gaussian query at
the same θ.  ``MixtureQueryEngine`` therefore:

1. runs Phases 1+2 of the paper's engine once per component, keeping any
   candidate some component leaves undecided or accepts;
2. unions the per-component candidate sets;
3. evaluates the *mixture* qualification probability of each survivor
   (exact per-component sum by default) against θ.

Because the per-component filters are the paper's sound filters, no answer
can be lost; the only cost of multi-modality is evaluating more
candidates.
"""

from __future__ import annotations

import numpy as np

from repro.core.database import SpatialDatabase
from repro.core.query import ProbabilisticRangeQuery
from repro.core.stats import QueryStats
from repro.core.strategies import REJECT, make_strategies
from repro.errors import QueryError
from repro.gaussian.mixture import GaussianMixture
from repro.integrate.base import ProbabilityIntegrator

__all__ = ["MixtureQueryEngine", "mixture_range_query"]


class MixtureQueryEngine:
    """PRQ processing for a :class:`GaussianMixture` query object.

    Parameters
    ----------
    database:
        The exact-location targets.
    strategies:
        Strategy spec applied per component (``"all"`` by default).
    integrator:
        Optional Monte Carlo integrator for Phase 3; when omitted the
        mixture probability is computed exactly (component-wise Ruben).
    """

    def __init__(
        self,
        database: SpatialDatabase,
        *,
        strategies: str = "all",
        integrator: ProbabilityIntegrator | None = None,
    ):
        self._database = database
        self._spec = strategies
        self._integrator = integrator

    def execute(
        self, mixture: GaussianMixture, delta: float, theta: float
    ) -> tuple[list[int], QueryStats]:
        if mixture.dim != self._database.dim:
            raise QueryError(
                f"mixture dimension {mixture.dim} does not match database "
                f"dimension {self._database.dim}"
            )
        if not 0.0 < theta < 1.0:
            raise QueryError(f"theta must lie in (0, 1), got {theta}")
        stats = QueryStats()
        survivors: set[int] = set()
        with stats.time_phase("search"):
            for component in mixture.components:
                query = ProbabilisticRangeQuery(component, delta, theta)
                strategies = make_strategies(self._spec)
                for strategy in strategies:
                    strategy.prepare(query)
                if any(s.proves_empty for s in strategies):
                    continue
                rect = None
                for strategy in strategies:
                    contribution = strategy.search_rect()
                    if contribution is None:
                        continue
                    rect = (
                        contribution if rect is None else rect.intersection(contribution)
                    )
                    if rect is None:
                        break
                if rect is None:
                    continue
                ids = self._database.index.range_search_rect(rect)
                if not ids:
                    continue
                points = np.vstack([self._database.point(i) for i in ids])
                undecided = np.ones(len(ids), dtype=bool)
                for strategy in strategies:
                    codes = strategy.classify(points[undecided])
                    idx = np.nonzero(undecided)[0]
                    undecided[idx[codes == REJECT]] = False
                # Both UNKNOWN and ACCEPT survive: acceptance under one
                # component does not by itself certify the mixture
                # threshold, so everything is re-evaluated in Phase 3.
                survivors.update(ids[i] for i in np.nonzero(undecided)[0])
            stats.retrieved = len(survivors)

        accepted: list[int] = []
        with stats.time_phase("integrate"):
            stats.integrations = len(survivors)
            for obj_id in survivors:
                point = self._database.point(obj_id)
                if self._integrator is None:
                    probability = mixture.qualification_probability(point, delta)
                else:
                    probability = sum(
                        w
                        * self._integrator.qualification_probability(
                            component, point, delta
                        ).estimate
                        for w, component in zip(
                            mixture.weights, mixture.components
                        )
                    )
                if probability >= theta:
                    accepted.append(obj_id)
        accepted.sort()
        stats.results = len(accepted)
        return accepted, stats


def mixture_range_query(
    database: SpatialDatabase,
    mixture: GaussianMixture,
    delta: float,
    theta: float,
    **kwargs,
) -> list[int]:
    """One-shot convenience wrapper around :class:`MixtureQueryEngine`."""
    engine = MixtureQueryEngine(database, **kwargs)
    ids, _ = engine.execute(mixture, delta, theta)
    return ids

"""Query kinds: every query type behind the one stage pipeline.

The paper's engine processes PRQ(q, δ, θ) with exact target locations.
This module folds the repository's other query types — uncertain targets
(:class:`UncertainTargetQuery`), Gaussian-mixture query objects
(:class:`MixtureRangeQuery`) and probabilistic k-NN (:class:`KNNQuery`) —
into the same Search → Filter → Integrate pipeline.  Each kind is a
frozen subclass of :class:`ProbabilisticRangeQuery` plus a pair of
adapters built by :func:`adapt_pipeline`:

- a kind-specific :class:`~repro.core.strategies.Strategy` contributing
  the Phase-1 search rectangle and the Phase-2 pruning bounds
  (convolved-covariance padding for uncertain targets, per-component
  union for mixtures, the sample-driven candidate cut for k-NN);
- a kind-specific :class:`~repro.integrate.base.ProbabilityIntegrator`
  wrapper supplying the Phase-3 integrand (per-target convolved
  qualification, the weighted mixture sum, per-sample win counting).

``SearchStage``/``FilterStage``/``IntegrateStage`` stay kind-agnostic:
they talk to the adapters through the ``classify_candidates`` /
``decide_candidates`` protocol extensions, which add candidate *ids* to
the classify/decide calls so per-target state (which covariance group an
object belongs to) never leaks into the stage bodies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.catalog.bf import alpha_radii
from repro.core.query import ProbabilisticRangeQuery
from repro.core.strategies import REJECT, UNKNOWN, ACCEPT, Strategy
from repro.errors import CatalogError, QueryError
from repro.gaussian.convolve import conservative_reach_alpha
from repro.gaussian.distribution import Gaussian
from repro.gaussian.mixture import GaussianMixture
from repro.geometry.mbr import Rect
from repro.integrate.base import ProbabilityIntegrator
from repro.integrate.result import IntegrationResult

__all__ = [
    "QUERY_KINDS",
    "query_kind",
    "adapt_pipeline",
    "UncertainTargetQuery",
    "MixtureRangeQuery",
    "KNNQuery",
    "TargetCovarianceTable",
    "ConvolvedTargetStrategy",
    "UncertainTargetDecider",
    "MixtureFilterStrategy",
    "MixtureDecider",
    "KNNCutStrategy",
    "KNNDecider",
]

#: Every kind the unified pipeline executes.
QUERY_KINDS: tuple[str, ...] = ("prq", "uncertain", "mixture", "knn")


def query_kind(query: ProbabilisticRangeQuery) -> str:
    """The kind tag of a query object (``"prq"`` for the base class)."""
    return getattr(query, "kind", "prq")


# ----------------------------------------------------------------------
# Kinded query specifications
# ----------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class UncertainTargetQuery(ProbabilisticRangeQuery):
    """PRQ whose *targets* are themselves Gaussian (paper future work).

    Identical specification to the base PRQ — the target covariances live
    in the database's :class:`TargetCovarianceTable`, not in the query —
    but the kind tag routes execution through the convolved-covariance
    adapters: Σ_q + Σ_o padding in Phase 1, per-target convolved BF
    bounds in Phase 2, and the convolved integrand in Phase 3.
    """

    kind = "uncertain"

    def __repr__(self) -> str:
        return (
            f"UncertainTargetQuery(center="
            f"{np.round(self.center, 4).tolist()}, "
            f"delta={self.delta:g}, theta={self.theta:g})"
        )


@dataclass(frozen=True, repr=False)
class MixtureRangeQuery(ProbabilisticRangeQuery):
    """PRQ whose query object is a :class:`GaussianMixture`.

    ``gaussian`` holds the moment-matched *envelope* N(μ_mix, Σ_mix) used
    only for planner canonicalization and dimension checks; the actual
    search/filter/integrate work runs against the components.  Build via
    :meth:`create` to get the envelope right.
    """

    kind = "mixture"

    mixture: GaussianMixture | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if not isinstance(self.mixture, GaussianMixture):
            raise QueryError(
                "MixtureRangeQuery needs a GaussianMixture; build one via "
                "MixtureRangeQuery.create(mixture, delta, theta)"
            )
        if self.mixture.dim != self.gaussian.dim:
            raise QueryError(
                f"mixture dimension {self.mixture.dim} does not match "
                f"envelope dimension {self.gaussian.dim}"
            )

    @classmethod
    def create(
        cls, mixture: GaussianMixture, delta: float, theta: float
    ) -> "MixtureRangeQuery":
        """Build the query with its moment-matched envelope Gaussian."""
        envelope = Gaussian(mixture.mean(), mixture.covariance())
        return cls(envelope, float(delta), float(theta), mixture=mixture)

    def __repr__(self) -> str:
        return (
            f"MixtureRangeQuery(k={len(self.mixture)}, "
            f"delta={self.delta:g}, theta={self.theta:g})"
        )


@dataclass(frozen=True, repr=False)
class KNNQuery(ProbabilisticRangeQuery):
    """Probabilistic k-NN: objects that are a k-NN of the query w.p. ≥ θ.

    ``delta`` is a placeholder (the k-NN predicate has no distance
    threshold); build via :meth:`create`.  ``seed`` pins the Monte Carlo
    sample stream — the default 0 matches
    :func:`repro.core.nn.probabilistic_nearest_neighbors`; pass ``None``
    to derive the stream from the engine's per-query seed instead.
    """

    kind = "knn"

    k: int = 1
    n_samples: int = 2_000
    seed: int | None = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.k < 1:
            raise QueryError(f"k must be >= 1, got {self.k}")
        if self.n_samples < 10:
            raise QueryError(
                f"n_samples must be >= 10, got {self.n_samples}"
            )

    @classmethod
    def create(
        cls,
        gaussian: Gaussian,
        k: int = 1,
        theta: float = 0.5,
        *,
        n_samples: int = 2_000,
        seed: int | None = 0,
    ) -> "KNNQuery":
        return cls(
            gaussian, 1.0, float(theta), k=int(k), n_samples=int(n_samples),
            seed=seed,
        )

    def __repr__(self) -> str:
        return (
            f"KNNQuery(center={np.round(self.center, 4).tolist()}, "
            f"k={self.k}, theta={self.theta:g}, n_samples={self.n_samples})"
        )


# ----------------------------------------------------------------------
# Uncertain targets
# ----------------------------------------------------------------------


class TargetCovarianceTable:
    """Per-object target covariances, deduplicated by matrix bytes.

    Most uncertain databases share a handful of sensor models across many
    objects, so the table stores each distinct Σ_o once (a *group*) and
    maps object ids to groups.  The convolved-target adapters look up
    per-candidate groups in O(1); the planner hashes the (sorted,
    quantized) group spectra into its plan-cache key.
    """

    def __init__(
        self, group_of: dict[int, int], sigmas: Sequence[np.ndarray]
    ):
        mats = [np.asarray(s, dtype=float) for s in sigmas]
        if not mats:
            raise QueryError("target table needs at least one covariance")
        dims = {m.shape for m in mats}
        if len(dims) != 1 or mats[0].ndim != 2:
            raise QueryError(
                f"target covariances must share one (d, d) shape, got "
                f"{sorted(dims)}"
            )
        if mats[0].shape[0] != mats[0].shape[1]:
            raise QueryError(
                f"target covariances must be square, got {mats[0].shape}"
            )
        self._group_of = {int(i): int(g) for i, g in group_of.items()}
        for obj_id, g in self._group_of.items():
            if not 0 <= g < len(mats):
                raise QueryError(
                    f"object {obj_id} maps to unknown covariance group {g}"
                )
        self._sigmas = mats
        self._eigs = [np.linalg.eigvalsh(m) for m in mats]  # ascending
        self._max_eig = max(float(e[-1]) for e in self._eigs)

    @classmethod
    def from_objects(cls, objects: Iterable) -> "TargetCovarianceTable":
        """Build from objects exposing ``obj_id`` and ``gaussian`` attrs
        (e.g. :class:`repro.core.uncertain.UncertainObject`)."""
        by_bytes: dict[bytes, int] = {}
        group_of: dict[int, int] = {}
        sigmas: list[np.ndarray] = []
        for obj in objects:
            sigma = np.asarray(obj.gaussian.sigma, dtype=float)
            key = sigma.tobytes()
            group = by_bytes.get(key)
            if group is None:
                group = len(sigmas)
                by_bytes[key] = group
                sigmas.append(sigma)
            group_of[int(obj.obj_id)] = group
        return cls(group_of, sigmas)

    @classmethod
    def shared(
        cls, sigma: np.ndarray, ids: Iterable[int]
    ) -> "TargetCovarianceTable":
        """One covariance shared by every object id."""
        return cls({int(i): 0 for i in ids}, [np.asarray(sigma, float)])

    @property
    def dim(self) -> int:
        return self._sigmas[0].shape[0]

    @property
    def n_groups(self) -> int:
        return len(self._sigmas)

    @property
    def max_eig(self) -> float:
        """Largest eigenvalue over every target covariance (the
        conservative-reach padding scale)."""
        return self._max_eig

    def __len__(self) -> int:
        return len(self._group_of)

    def sigma(self, group: int) -> np.ndarray:
        return self._sigmas[group]

    def groups_for(self, ids: Iterable[int]) -> np.ndarray:
        """Group index per object id (vector lookup)."""
        id_list = [int(i) for i in ids]
        try:
            return np.fromiter(
                (self._group_of[i] for i in id_list),
                dtype=np.int64,
                count=len(id_list),
            )
        except KeyError as exc:
            raise QueryError(
                f"no target covariance registered for object id "
                f"{exc.args[0]!r}"
            ) from None

    def spectra(self) -> tuple[tuple[float, ...], ...]:
        """Sorted per-group eigenvalue tuples (planner cache-key input)."""
        return tuple(
            sorted(tuple(float(v) for v in eigs) for eigs in self._eigs)
        )


class ConvolvedTargetStrategy(Strategy):
    """Uncertain-target Phase-1/2 adapter (replaces RR/OR/BF).

    The exact-target filters are *unsound* when targets are Gaussian — a
    target mean outside the exact θ-region ⊕ δ-ball can still qualify via
    its own spread — so this strategy replaces them with the convolved
    machinery:

    - Phase 1: the conservative reach α of
      :func:`repro.gaussian.convolve.conservative_reach_alpha` under the
      worst-case target covariance (``None`` proves the result empty);
    - Phase 2: per-covariance-group BF radii (α∥, α⊥) of the convolved
      Gaussian N(q, Σ_q + Σ_o) — REJECT beyond α∥, free-ACCEPT within α⊥.
    """

    name = "UT"

    def __init__(self, table: TargetCovarianceTable):
        self._table = table
        self._center: np.ndarray | None = None
        self._alpha: float | None = None
        self._radii: list[tuple[float | None, float | None]] | None = None

    def prepare(self, query: ProbabilisticRangeQuery) -> None:
        if query.dim != self._table.dim:
            raise QueryError(
                f"query dimension {query.dim} does not match target "
                f"covariance dimension {self._table.dim}"
            )
        self._center = query.center
        self._alpha = conservative_reach_alpha(
            query.gaussian, query.delta, query.theta, self._table.max_eig
        )
        radii: list[tuple[float | None, float | None]] = []
        if self._alpha is not None:
            for group in range(self._table.n_groups):
                convolved = Gaussian(
                    query.center,
                    query.gaussian.sigma + self._table.sigma(group),
                )
                try:
                    radii.append(
                        alpha_radii(convolved, query.delta, query.theta)
                    )
                except CatalogError as exc:
                    raise QueryError(str(exc)) from exc
        self._radii = radii

    @property
    def proves_empty(self) -> bool:
        self._require_prepared("_radii")
        return self._alpha is None

    @property
    def alpha(self) -> float | None:
        """Conservative reach radius (None = result proven empty)."""
        self._require_prepared("_radii")
        return self._alpha

    @property
    def n_groups(self) -> int:
        return self._table.n_groups

    def search_rect(self) -> Rect | None:
        self._require_prepared("_radii")
        if self._alpha is None:
            return None
        return Rect.from_center(
            self._center, np.full(self._center.size, self._alpha)
        )

    def classify(self, points: np.ndarray) -> np.ndarray:
        # Without ids the covariance group is unknown; only the
        # group-independent conservative reach is a sound filter.
        self._require_prepared("_radii")
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        codes = np.full(pts.shape[0], UNKNOWN, dtype=np.int8)
        if self._alpha is None:
            codes[:] = REJECT
            return codes
        deltas = pts - self._center
        distances = np.sqrt(np.einsum("ij,ij->i", deltas, deltas))
        codes[distances > self._alpha] = REJECT
        return codes

    def classify_many(self, points: np.ndarray) -> np.ndarray:
        return self.classify(points)

    def classify_candidates(
        self, ids: np.ndarray, points: np.ndarray
    ) -> np.ndarray:
        self._require_prepared("_radii")
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        codes = np.full(pts.shape[0], UNKNOWN, dtype=np.int8)
        if pts.shape[0] == 0:
            return codes
        if self._alpha is None:
            codes[:] = REJECT
            return codes
        groups = self._table.groups_for(ids)
        deltas = pts - self._center
        distances = np.sqrt(np.einsum("ij,ij->i", deltas, deltas))
        for group in np.unique(groups):
            upper, lower = self._radii[int(group)]
            mask = groups == group
            if upper is None:
                codes[mask] = REJECT
                continue
            codes[mask & (distances > upper)] = REJECT
            if lower is not None:
                codes[mask & (distances <= lower)] = ACCEPT
        return codes


class UncertainTargetDecider(ProbabilityIntegrator):
    """Phase-3 adapter: integrate each candidate under N(q, Σ_q + Σ_o).

    Wraps any base integrator; candidates are grouped by target
    covariance and each group decided with the base integrator against
    its convolved Gaussian, so per-candidate results are exactly what the
    base integrator produces for the reduced one-sided problem.
    """

    def __init__(self, base: ProbabilityIntegrator, table: TargetCovarianceTable):
        self._base = base
        self._table = table
        self.name = f"uncertain({base.name})"

    def qualification_probability(
        self, gaussian: Gaussian, point: np.ndarray, delta: float
    ) -> IntegrationResult:
        raise QueryError(
            "uncertain-target integration needs candidate ids (the target "
            "covariance group); use decide_candidates"
        )

    def decide_candidates(
        self,
        gaussian: Gaussian,
        ids: np.ndarray,
        points: np.ndarray,
        delta: float,
        theta: float,
    ) -> tuple[np.ndarray, np.ndarray, list[IntegrationResult]]:
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        n = pts.shape[0]
        accept = np.zeros(n, dtype=bool)
        results: list[IntegrationResult | None] = [None] * n
        groups = self._table.groups_for(ids)
        self._base.obs = self.obs
        try:
            for group in np.unique(groups):
                convolved = Gaussian(
                    gaussian.mean,
                    gaussian.sigma + self._table.sigma(int(group)),
                )
                mask = groups == group
                idx = np.nonzero(mask)[0]
                got_accept, _, got = self._base.decide(
                    convolved, pts[idx], delta, theta
                )
                accept[idx] = got_accept
                for slot, result in zip(idx, got):
                    results[slot] = result
        finally:
            self._base.obs = None
        return accept, ~accept, results

    @property
    def composition_independent(self) -> bool:
        return self._base.composition_independent

    @property
    def cost_per_candidate(self) -> float:
        return self._base.cost_per_candidate

    def fork(self, seed) -> "UncertainTargetDecider":
        return UncertainTargetDecider(self._base.fork(seed), self._table)


# ----------------------------------------------------------------------
# Gaussian-mixture query objects
# ----------------------------------------------------------------------


class MixtureFilterStrategy(Strategy):
    """Mixture Phase-1/2 adapter: per-component filters, unioned.

    Since Σwᵢ = 1, the mixture probability is at most max_i Pᵢ, so every
    answer qualifies some component's single-Gaussian query at the same
    θ.  Preparation runs the base strategy templates once per component
    (dropping components a strategy proves empty); the Phase-1 rectangle
    is the *union* of the per-component intersections, and a candidate is
    REJECTed only when **every** live component rejects it (never
    free-ACCEPTed: one component's acceptance does not certify the
    mixture threshold).
    """

    name = "MIX"

    def __init__(self, templates: Sequence[Strategy], mixture: GaussianMixture):
        self._templates = [t.clone() for t in templates]
        self._mixture = mixture
        self._live: list[tuple[Rect, list[Strategy]]] | None = None

    def prepare(self, query: ProbabilisticRangeQuery) -> None:
        if self._mixture.dim != query.dim:
            raise QueryError(
                f"mixture dimension {self._mixture.dim} does not match "
                f"query dimension {query.dim}"
            )
        live: list[tuple[Rect, list[Strategy]]] = []
        for component in self._mixture.components:
            sub = ProbabilisticRangeQuery(component, query.delta, query.theta)
            strategies = [t.clone() for t in self._templates]
            for strategy in strategies:
                strategy.prepare(sub)
            if any(s.proves_empty for s in strategies):
                continue
            rect: Rect | None = None
            for strategy in strategies:
                contribution = strategy.search_rect()
                if contribution is None:
                    continue
                rect = (
                    contribution
                    if rect is None
                    else rect.intersection(contribution)
                )
                if rect is None:
                    break
            if rect is None:
                continue
            live.append((rect, strategies))
        self._live = live

    @property
    def proves_empty(self) -> bool:
        self._require_prepared("_live")
        return not self._live

    @property
    def n_live(self) -> int:
        """Components whose Phase-1 region survived preparation."""
        self._require_prepared("_live")
        return len(self._live)

    @property
    def n_components(self) -> int:
        return len(self._mixture)

    def search_rect(self) -> Rect | None:
        self._require_prepared("_live")
        if not self._live:
            return None
        return Rect.union_of([rect for rect, _ in self._live])

    def classify(self, points: np.ndarray) -> np.ndarray:
        self._require_prepared("_live")
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        alive = np.zeros(pts.shape[0], dtype=bool)
        for rect, strategies in self._live:
            pending = rect.contains_points(pts) & ~alive
            if not np.any(pending):
                continue
            undecided = pending.copy()
            for strategy in strategies:
                if not np.any(undecided):
                    break
                codes = strategy.classify_many(pts[undecided])
                idx = np.nonzero(undecided)[0]
                undecided[idx[codes == REJECT]] = False
            alive |= undecided
        return np.where(alive, UNKNOWN, REJECT).astype(np.int8)

    def classify_many(self, points: np.ndarray) -> np.ndarray:
        return self.classify(points)


class MixtureDecider(ProbabilityIntegrator):
    """Phase-3 adapter: the weighted mixture qualification probability.

    With a base integrator the estimate is Σ wᵢ · baseᵢ(point) — for
    :class:`repro.integrate.exact.ExactIntegrator` this reproduces
    :meth:`GaussianMixture.qualification_probability` bit for bit.
    Without one the exact component-wise Ruben sum is used directly.
    """

    def __init__(
        self,
        mixture: GaussianMixture,
        base: ProbabilityIntegrator | None = None,
    ):
        self._mixture = mixture
        self._base = base
        self.name = "mixture" if base is None else f"mixture({base.name})"

    def qualification_probability(
        self, gaussian: Gaussian, point: np.ndarray, delta: float
    ) -> IntegrationResult:
        # The envelope ``gaussian`` is ignored: the integrand is the
        # mixture's own qualification probability.
        p = np.asarray(point, dtype=float)
        if self._base is None:
            estimate = self._mixture.qualification_probability(p, delta)
            return IntegrationResult(float(estimate), 0.0, 0, "mixture")
        parts = [
            self._base.qualification_probability(component, p, delta)
            for component in self._mixture.components
        ]
        weights = self._mixture.weights
        estimate = float(
            sum(w * r.estimate for w, r in zip(weights, parts))
        )
        stderr = float(
            math.sqrt(sum((w * r.stderr) ** 2 for w, r in zip(weights, parts)))
        )
        n_samples = int(sum(r.n_samples for r in parts))
        return IntegrationResult(estimate, stderr, n_samples, self.name)

    @property
    def composition_independent(self) -> bool:
        if self._base is None:
            return True
        return self._base.composition_independent

    @property
    def cost_per_candidate(self) -> float:
        per = 1.5e-4 if self._base is None else self._base.cost_per_candidate
        return per * len(self._mixture)

    def fork(self, seed) -> "MixtureDecider":
        base = None if self._base is None else self._base.fork(seed)
        return MixtureDecider(self._mixture, base)


# ----------------------------------------------------------------------
# Probabilistic k-NN
# ----------------------------------------------------------------------


class KNNCutStrategy(Strategy):
    """k-NN Phase-1 adapter: the sample-driven candidate cut.

    Preparation materializes the decider's Monte Carlo sample set, bounds
    the k-th neighbour distance with one index probe at the farthest
    sample, and hands the resulting cut radius back to the decider — only
    objects inside the cut sphere can be a k-NN of any sample, so they
    (and only they) compete in Phase 3.  Phase 2 never decides anything:
    every candidate must stay in the competition.
    """

    name = "KNN"

    def __init__(self, index, decider: "KNNDecider"):
        self._index = index
        self._decider = decider
        self._rect: Rect | None = None
        self._cut_radius: float | None = None

    @property
    def cut_radius(self) -> float:
        self._require_prepared("_rect")
        return self._cut_radius

    def prepare(self, query: ProbabilisticRangeQuery) -> None:
        k = int(query.k)
        if k > len(self._index):
            raise QueryError(
                f"k={k} exceeds database size {len(self._index)}"
            )
        samples = self._decider.materialize_samples(query)
        center = query.center
        radii = np.linalg.norm(samples - center, axis=1)
        farthest = samples[int(np.argmax(radii))]
        kth_distance = self._index.knn(farthest, k)[-1][1]
        cut_radius = float(radii.max() + kth_distance + radii.max())
        self._decider.set_cut(center, cut_radius)
        self._cut_radius = cut_radius
        self._rect = Rect.from_center(
            center, np.full(query.dim, cut_radius)
        )

    def search_rect(self) -> Rect:
        self._require_prepared("_rect")
        return self._rect

    def classify(self, points: np.ndarray) -> np.ndarray:
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        return np.full(pts.shape[0], UNKNOWN, dtype=np.int8)

    def classify_many(self, points: np.ndarray) -> np.ndarray:
        return self.classify(points)


class KNNDecider(ProbabilityIntegrator):
    """Phase-3 adapter: per-sample win counting over the candidate block.

    Estimates P(o is among the k nearest objects) by counting, over the
    materialized query-location samples, how often each candidate is one
    of the sample's k nearest *competitors* (the candidates inside the
    cut sphere — the Phase-1 rectangle is a superset of the sphere, and
    rectangle-only extras provably never win, so they are excluded from
    the competition exactly as the legacy path excludes them).  For k = 1
    the exact bisector upper bounds restrict the *reporting* set without
    removing anyone from the competition.
    """

    name = "knn-mc"

    def __init__(self, k: int, n_samples: int, rng: np.random.Generator):
        self.k = int(k)
        self.n_samples = int(n_samples)
        self._rng = rng
        self._samples: np.ndarray | None = None
        self._center: np.ndarray | None = None
        self._cut_radius: float | None = None

    def materialize_samples(self, query: ProbabilisticRangeQuery) -> np.ndarray:
        """Draw (once) and cache the Monte Carlo query-location samples."""
        if self._samples is None:
            self._samples = query.gaussian.sample(self.n_samples, self._rng)
        return self._samples

    def set_cut(self, center: np.ndarray, radius: float) -> None:
        self._center = np.asarray(center, dtype=float)
        self._cut_radius = float(radius)

    def qualification_probability(
        self, gaussian: Gaussian, point: np.ndarray, delta: float
    ) -> IntegrationResult:
        raise QueryError(
            "k-NN probabilities depend on the whole candidate block; use "
            "decide_candidates"
        )

    def decide_candidates(
        self,
        gaussian: Gaussian,
        ids: np.ndarray,
        points: np.ndarray,
        delta: float,
        theta: float,
    ) -> tuple[np.ndarray, np.ndarray, list[IntegrationResult]]:
        if self._samples is None or self._cut_radius is None:
            raise QueryError("KNN decider used before its cut strategy prepared")
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        n = pts.shape[0]
        accept = np.zeros(n, dtype=bool)
        outside = IntegrationResult(0.0, 0.0, 0, "knn-cut")
        results: list[IntegrationResult] = [outside] * n
        deltas = pts - self._center
        distances = np.sqrt(np.einsum("ij,ij->i", deltas, deltas))
        compete = np.nonzero(distances <= self._cut_radius)[0]
        if not compete.size:
            return accept, ~accept, results
        candidates = pts[compete]

        if self.k == 1 and compete.size > 2:
            from repro.core.nn import bisector_upper_bounds

            upper = bisector_upper_bounds(gaussian, candidates)
            reportable = upper >= theta
        else:
            reportable = np.ones(compete.size, dtype=bool)

        wins = np.zeros(compete.size, dtype=np.int64)
        chunk = max(1, 2_000_000 // max(1, compete.size))
        for start in range(0, self.n_samples, chunk):
            block = self._samples[start : start + chunk]
            d2 = (
                np.einsum("ij,ij->i", block, block)[:, None]
                - 2.0 * block @ candidates.T
                + np.einsum("ij,ij->i", candidates, candidates)[None, :]
            )
            if self.k == 1:
                nearest = np.argmin(d2, axis=1)
                np.add.at(wins, nearest, 1)
            else:
                nearest = np.argpartition(d2, self.k - 1, axis=1)[:, : self.k]
                np.add.at(wins, nearest.ravel(), 1)

        for local, slot in enumerate(compete):
            p_hat = wins[local] / self.n_samples
            stderr = float(
                np.sqrt(p_hat * (1.0 - p_hat) / self.n_samples)
            )
            results[slot] = IntegrationResult(
                float(p_hat), stderr, self.n_samples, "knn-mc"
            )
            if p_hat >= theta and reportable[local]:
                accept[slot] = True
        return accept, ~accept, results


# ----------------------------------------------------------------------
# The one entry point the engines call
# ----------------------------------------------------------------------


def adapt_pipeline(
    query: ProbabilisticRangeQuery,
    strategies: list[Strategy],
    integrator: ProbabilityIntegrator,
    *,
    index,
    targets: TargetCovarianceTable | None = None,
    seed=None,
) -> tuple[list[Strategy], ProbabilityIntegrator]:
    """Swap in the kind-specific strategy list and integrator wrapper.

    Exact-target PRQs pass through untouched (the hot path).  For the
    other kinds the returned pair plugs straight into the kind-agnostic
    stage pipeline:

    - ``"uncertain"`` — :class:`ConvolvedTargetStrategy` *replaces* the
      exact-target strategies (which are unsound for Gaussian targets)
      and the integrator is wrapped in :class:`UncertainTargetDecider`;
    - ``"mixture"`` — the base strategies become per-component templates
      of a :class:`MixtureFilterStrategy` and the integrator evaluates
      components inside a :class:`MixtureDecider`;
    - ``"knn"`` — a fresh :class:`KNNCutStrategy`/:class:`KNNDecider`
      pair seeded from ``query.seed`` (or the engine's per-query
      ``seed`` when the query leaves it ``None``).
    """
    kind = query_kind(query)
    if kind == "prq":
        return strategies, integrator
    if kind == "uncertain":
        if targets is None:
            raise QueryError(
                "uncertain-target queries need a database built with a "
                "TargetCovarianceTable (SpatialDatabase(..., target_table=...))"
            )
        return (
            [ConvolvedTargetStrategy(targets)],
            UncertainTargetDecider(integrator, targets),
        )
    if kind == "mixture":
        return (
            [MixtureFilterStrategy(strategies, query.mixture)],
            MixtureDecider(query.mixture, integrator),
        )
    if kind == "knn":
        rng_seed = query.seed if query.seed is not None else seed
        decider = KNNDecider(
            query.k, query.n_samples, np.random.default_rng(rng_seed)
        )
        return [KNNCutStrategy(index, decider)], decider
    raise QueryError(
        f"unknown query kind {kind!r}; expected one of {QUERY_KINDS}"
    )

"""Composable execution stages behind the three-phase engine.

The paper's query processor is one fixed Search → Filter → Integrate
sequence; this module turns each phase into a stage object so the engine
(and anything else — the monitoring session, the planner's what-if
machinery) can compose, reorder or skip phases without duplicating the
phase bodies.  A stage consumes and mutates one :class:`StageContext`;
:func:`execute_pipeline` is the single shared driver that
``QueryEngine.execute``, ``run`` and ``run_batch`` all funnel through,
which is what guarantees the two paths can never drift apart.

Every stage times itself under its ``phase`` label, so the
``QueryStats.phase_seconds`` structure is identical no matter which entry
point built the pipeline.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.core.query import ProbabilisticRangeQuery
from repro.core.stats import QueryStats
from repro.core.strategies import ACCEPT, REJECT, Strategy
from repro.errors import QueryError
from repro.geometry.mbr import Rect
from repro.index.base import SpatialIndex
from repro.integrate.base import ProbabilityIntegrator
from repro.obs import Observability

__all__ = [
    "StageContext",
    "Stage",
    "SearchStage",
    "FilterStage",
    "IntegrateStage",
    "execute_pipeline",
]


@dataclass
class StageContext:
    """Mutable per-execution state handed from stage to stage.

    ``candidate_ids``/``points`` may be pre-populated (the monitoring
    session injects its cached candidates instead of running a
    :class:`SearchStage`); ``finished`` short-circuits the remaining
    stages (set when a strategy proves the result empty or Phase 1
    retrieves nothing).
    """

    query: ProbabilisticRangeQuery
    strategies: list[Strategy]
    integrator: ProbabilityIntegrator
    stats: QueryStats = field(default_factory=QueryStats)
    candidate_ids: np.ndarray | None = None
    points: np.ndarray | None = None
    #: Object ids already accepted into the result (BF free accepts plus
    #: Phase-3 accepts accumulate here).
    accepted: list[int] = field(default_factory=list)
    #: Boolean mask over ``candidate_ids`` of rows still undecided.
    undecided: np.ndarray | None = None
    finished: bool = False
    #: Optional observability sink: when set, :func:`execute_pipeline`
    #: wraps every stage in a ``phase:<name>`` span and the integrator
    #: may emit tier spans beneath it.  Never affects results.
    obs: Observability | None = None


class Stage(abc.ABC):
    """One phase of the pipeline; mutates the context in place."""

    #: Timing bucket in ``QueryStats.phase_seconds``.
    phase: str = "abstract"

    @abc.abstractmethod
    def run(self, ctx: StageContext) -> None:
        """Execute this phase against ``ctx``."""


class SearchStage(Stage):
    """Phase 1: prepare the strategies and run one index range search.

    ``phase1`` selects the paper-faithful ``"primary"`` mode (only the
    first contributing strategy's rectangle drives the search, Algorithms
    1/2) or the default ``"intersect"`` mode (every contributed rectangle
    is intersected — never retrieves more, never loses answers).
    """

    phase = "search"

    def __init__(self, index: SpatialIndex, *, phase1: str = "intersect"):
        if phase1 not in ("intersect", "primary"):
            raise QueryError(
                f"phase1 must be 'intersect' or 'primary', got {phase1!r}"
            )
        self.index = index
        self.phase1 = phase1

    def prepare(
        self,
        query: ProbabilisticRangeQuery,
        strategies: list[Strategy],
        stats: QueryStats,
    ) -> Rect | None:
        """Prepare every strategy and return the combined Phase-1 rectangle.

        Returns ``None`` when some strategy proved the result empty (the
        reason lands in ``stats.empty_by_strategy``).
        """
        if query.dim != self.index.dim:
            raise QueryError(
                f"query dimension {query.dim} does not match index "
                f"dimension {self.index.dim}"
            )
        for strategy in strategies:
            strategy.prepare(query)
        for strategy in strategies:
            if strategy.proves_empty:
                stats.empty_by_strategy = strategy.name
                return None
        rect = combined_search_rect(strategies, phase1=self.phase1)
        if rect is None:
            stats.empty_by_strategy = "intersection"
        return rect

    def run(self, ctx: StageContext) -> None:
        rect = self.prepare(ctx.query, ctx.strategies, ctx.stats)
        if rect is None:
            ctx.finished = True
            return
        candidate_ids = self.index.range_search_rect(rect)
        ctx.stats.retrieved = len(candidate_ids)
        if not candidate_ids:
            ctx.finished = True
            return
        ctx.candidate_ids = np.asarray(candidate_ids)
        ctx.points = np.vstack([self.index.get(i) for i in candidate_ids])


class FilterStage(Stage):
    """Phase 2: classify candidates with every strategy.

    A single REJECT drops a candidate; a single ACCEPT (only BF issues
    these) adds it to the result without integration; survivors stay in
    ``ctx.undecided`` for Phase 3.
    """

    phase = "filter"

    def run(self, ctx: StageContext) -> None:
        ids_arr = ctx.candidate_ids
        assert ids_arr is not None and ctx.points is not None
        undecided = np.ones(ids_arr.size, dtype=bool)
        accept_mask = np.zeros(ids_arr.size, dtype=bool)
        for strategy in ctx.strategies:
            if not np.any(undecided):
                break
            codes = strategy.classify_candidates(
                ids_arr[undecided], ctx.points[undecided]
            )
            rejected = codes == REJECT
            ctx.stats.note_rejections(
                strategy.name, int(np.count_nonzero(rejected))
            )
            idx = np.nonzero(undecided)[0]
            accept_mask[idx[codes == ACCEPT]] = True
            undecided[idx[rejected]] = False
            undecided[idx[codes == ACCEPT]] = False
        ctx.accepted.extend(ids_arr[accept_mask].tolist())
        ctx.stats.accepted_without_integration = int(
            np.count_nonzero(accept_mask)
        )
        ctx.undecided = undecided


class IntegrateStage(Stage):
    """Phase 3: θ-decide every still-undecided candidate.

    Decision-aware: the integrator only has to settle p ≥ θ per
    candidate, so bound-based backends (the cascade) can decide most of
    the block without ever computing a full probability.  The base-class
    ``decide()`` is ``qualification_probabilities`` + the ``estimate ≥ θ``
    rule, so sampling integrators behave identically.
    """

    phase = "integrate"

    def run(self, ctx: StageContext) -> None:
        ids_arr = ctx.candidate_ids
        assert ids_arr is not None and ctx.points is not None
        undecided = (
            ctx.undecided
            if ctx.undecided is not None
            else np.ones(ids_arr.size, dtype=bool)
        )
        to_integrate = np.nonzero(undecided)[0]
        ctx.stats.integrations = int(to_integrate.size)
        if not to_integrate.size:
            return
        query = ctx.query
        if ctx.obs is not None:
            # Hand the sink to the integrator for the duration of the
            # call so tier-aware backends (the cascade) can emit
            # ``tier:*`` child spans under this phase's span.
            ctx.integrator.obs = ctx.obs
        try:
            accept, _, estimates = ctx.integrator.decide_candidates(
                query.gaussian,
                ids_arr[to_integrate],
                ctx.points[to_integrate],
                query.delta,
                query.theta,
            )
        finally:
            if ctx.obs is not None:
                ctx.integrator.obs = None
        for slot, result, is_accept in zip(to_integrate, estimates, accept):
            ctx.stats.integration_samples += result.n_samples
            ctx.stats.note_decision(result.method)
            if is_accept:
                ctx.accepted.append(ids_arr[slot])


def combined_search_rect(
    strategies: list[Strategy], *, phase1: str = "intersect"
) -> Rect | None:
    """The Phase-1 rectangle under the given policy; ``None`` if empty.

    Raises :class:`QueryError` when no strategy contributes a rectangle.
    """
    rect: Rect | None = None
    for strategy in strategies:
        contribution = strategy.search_rect()
        if contribution is None:
            continue
        if phase1 == "primary":
            return contribution  # the first contributing strategy wins
        rect = contribution if rect is None else rect.intersection(contribution)
        if rect is None:
            return None
    if rect is None:
        raise QueryError(
            "no strategy contributed a Phase-1 search region; include RR, "
            "OR, EM or BF"
        )
    return rect


#: Per-stage span payload: phase name -> QueryStats fields worth carrying
#: on the ``phase:<name>`` span (part of the telemetry contract).
_SPAN_COUNTERS = {
    "search": ("retrieved",),
    "filter": ("accepted_without_integration",),
    "integrate": ("integrations", "integration_samples"),
}


def execute_pipeline(
    ctx: StageContext, stages: list[Stage]
) -> tuple[int, ...]:
    """Run ``stages`` in order over ``ctx`` and return the sorted result ids.

    Each stage's wall time accumulates under its ``phase`` label; a stage
    setting ``ctx.finished`` short-circuits the rest.  This is the single
    driver behind every engine entry point.  With ``ctx.obs`` set, every
    stage additionally runs inside a ``phase:<name>`` span carrying its
    headline counters.
    """
    obs = ctx.obs
    for stage in stages:
        if ctx.finished:
            break
        with ctx.stats.time_phase(stage.phase):
            if obs is None:
                stage.run(ctx)
            else:
                with obs.span(f"phase:{stage.phase}") as span:
                    stage.run(ctx)
                    span.annotate(
                        **{
                            name: getattr(ctx.stats, name)
                            for name in _SPAN_COUNTERS.get(stage.phase, ())
                        }
                    )
    ids = tuple(int(i) for i in sorted(ctx.accepted))
    ctx.stats.results = len(ids)
    return ids

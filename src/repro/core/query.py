"""The probabilistic range query specification (Definition 2).

``PRQ(q, δ, θ)`` returns every object whose distance from the Gaussian
query location is at most δ with probability at least θ.  The paper
requires 0 < θ < 1: at θ = 0 every object qualifies (the Gaussian has
infinite support) and at θ = 1 none can.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import InvalidThresholdError, QueryError
from repro.gaussian.distribution import Gaussian

__all__ = ["ProbabilisticRangeQuery"]

_ArrayLike = Sequence[float] | np.ndarray


@dataclass(frozen=True)
class ProbabilisticRangeQuery:
    """An immutable PRQ(q, δ, θ) specification.

    Attributes
    ----------
    gaussian:
        The query object's location distribution N(q, Σ).
    delta:
        Distance threshold δ > 0.
    theta:
        Probability threshold, 0 < θ < 1.
    """

    #: Kind tag consumed by :mod:`repro.core.kinds` — subclasses override
    #: (``"uncertain"``, ``"mixture"``, ``"knn"``) to route execution
    #: through their pipeline adapters; the base class is the paper's
    #: exact-target PRQ.
    kind = "prq"

    gaussian: Gaussian
    delta: float
    theta: float

    def __post_init__(self) -> None:
        if not isinstance(self.gaussian, Gaussian):
            raise QueryError(
                f"gaussian must be a Gaussian, got {type(self.gaussian).__name__}"
            )
        if not math.isfinite(self.delta) or self.delta <= 0:
            raise QueryError(f"delta must be finite and > 0, got {self.delta}")
        if not (math.isfinite(self.theta) and 0.0 < self.theta < 1.0):
            raise InvalidThresholdError(self.theta)

    @classmethod
    def create(
        cls,
        center: _ArrayLike,
        sigma: np.ndarray,
        delta: float,
        theta: float,
    ) -> "ProbabilisticRangeQuery":
        """Convenience constructor from raw mean/covariance."""
        return cls(Gaussian(center, sigma), float(delta), float(theta))

    @property
    def center(self) -> np.ndarray:
        return self.gaussian.mean

    @property
    def dim(self) -> int:
        return self.gaussian.dim

    @property
    def region_theta(self) -> float:
        """θ value used to build θ-regions (Definition 3 needs θ < 1/2).

        For θ >= 1/2 the θ-region is undefined; any smaller θ′ yields a
        *larger* region, which is always a correct (conservative) choice,
        so region-based strategies clamp to just below 1/2.
        """
        return min(self.theta, 0.5 - 1e-9)

    def __repr__(self) -> str:
        return (
            f"PRQ(center={np.round(self.center, 4).tolist()}, "
            f"delta={self.delta:g}, theta={self.theta:g})"
        )

"""Probabilistic nearest-neighbour queries (paper future work, Section VII).

For a Gaussian query object, the qualification probability of a target o
is P(o is among the k nearest objects to the query's true location) — a
d-dimensional integral over the query density of an indicator that depends
on *all* objects at once, so no per-object closed form exists.  We
estimate it by Monte Carlo over the query location with an index-driven
candidate cut:

1. draw n sample locations from N(q, Σ);
2. restrict attention to objects that can possibly be a k-NN of any
   sample: every object within ``max_sample_radius + kth_distance`` of q,
   where kth_distance bounds the k-th neighbour distance over samples;
3. for every sample, find its k nearest candidates (vectorised) and count
   wins per object.

The returned probabilities are unbiased binomial estimates; objects with
estimate >= θ qualify.

For k = 1 an *exact* pre-filter exists in the spirit of the paper's BF
strategy: ``P(o is NN) <= P(o beats o')`` for any single competitor o',
and "o beats o'" is the half-space event ‖x − o‖ ≤ ‖x − o'‖ — a *linear*
inequality in x, whose probability under a Gaussian is a closed-form
normal CDF (:func:`halfspace_win_probability`).  Minimizing over a few
strong competitors gives a cheap sound upper bound that prunes most
candidates before any sampling (:func:`bisector_upper_bounds`).

The same algorithm also runs through the unified stage pipeline: a
:class:`repro.core.kinds.KNNQuery` executed by any engine entry point
(``execute``, ``run_batch``, ``repro.serve``, ``repro.shard``) reproduces
:func:`probabilistic_nearest_neighbors` bit-for-bit when given the same
seed and sample budget — this module remains the reference oracle (and
returns the per-candidate probabilities, which the set-valued pipeline
result does not).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import special

from repro.core.database import SpatialDatabase
from repro.errors import QueryError
from repro.gaussian.distribution import Gaussian

__all__ = [
    "NearestNeighborCandidate",
    "probabilistic_nearest_neighbors",
    "halfspace_win_probability",
    "bisector_upper_bounds",
]


def halfspace_win_probability(
    gaussian: Gaussian, candidate: np.ndarray, competitor: np.ndarray
) -> float:
    """Exact P(‖x − candidate‖ <= ‖x − competitor‖) for x ~ N(q, Σ).

    Expanding both squared norms, the event is the half-space
    ``2 (competitor − candidate)ᵀ x <= ‖competitor‖² − ‖candidate‖²``;
    under the Gaussian a linear functional aᵀx is N(aᵀq, aᵀΣa), so the
    probability is one normal CDF evaluation.
    """
    o = np.asarray(candidate, dtype=float)
    c = np.asarray(competitor, dtype=float)
    if o.shape != (gaussian.dim,) or c.shape != (gaussian.dim,):
        raise QueryError(
            f"candidate/competitor must have shape ({gaussian.dim},), got "
            f"{o.shape} and {c.shape}"
        )
    direction = 2.0 * (c - o)
    norm_sq = float(direction @ direction)
    if norm_sq == 0.0:
        return 1.0  # identical points: a tie counts as a win (<=)
    bound = float(c @ c - o @ o)
    mean = float(direction @ gaussian.mean)
    std = float(np.sqrt(direction @ gaussian.sigma @ direction))
    return float(special.ndtr((bound - mean) / std))


def bisector_upper_bounds(
    gaussian: Gaussian,
    candidates: np.ndarray,
    *,
    n_competitors: int = 4,
) -> np.ndarray:
    """Sound upper bounds on P(candidate is the NN), one per candidate row.

    For each candidate the bound is the minimum half-space win probability
    against its ``n_competitors`` nearest *other* candidates — any losing
    competitor disproves being the nearest neighbour, so every bound is a
    valid (conservative) upper bound on the NN probability.
    """
    pts = np.atleast_2d(np.asarray(candidates, dtype=float))
    n = pts.shape[0]
    if n == 0:
        return np.empty(0)
    if n == 1:
        return np.ones(1)
    take = min(n_competitors, n - 1)
    # Pairwise squared distances between candidates; each candidate's
    # strongest competitors are its nearest candidate neighbours.
    d2 = (
        np.einsum("ij,ij->i", pts, pts)[:, None]
        - 2.0 * pts @ pts.T
        + np.einsum("ij,ij->i", pts, pts)[None, :]
    )
    np.fill_diagonal(d2, np.inf)
    bounds = np.ones(n)
    for i in range(n):
        rivals = np.argpartition(d2[i], take - 1)[:take]
        for j in rivals:
            bounds[i] = min(
                bounds[i], halfspace_win_probability(gaussian, pts[i], pts[j])
            )
    return bounds


@dataclass(frozen=True)
class NearestNeighborCandidate:
    """One object with its estimated probability of being a k-NN."""

    obj_id: int
    probability: float
    stderr: float


def probabilistic_nearest_neighbors(
    database: SpatialDatabase,
    gaussian: Gaussian,
    k: int = 1,
    theta: float = 0.5,
    *,
    n_samples: int = 2_000,
    seed: int = 0,
) -> list[NearestNeighborCandidate]:
    """Objects that are a k-NN of the Gaussian query with probability >= θ.

    Results are sorted by descending probability.  ``n_samples`` trades
    accuracy for time; the standard error of each probability is reported.
    """
    if gaussian.dim != database.dim:
        raise QueryError(
            f"query dimension {gaussian.dim} does not match database "
            f"dimension {database.dim}"
        )
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    if not 0.0 < theta < 1.0:
        raise QueryError(f"theta must lie in (0, 1), got {theta}")
    if n_samples < 10:
        raise QueryError(f"n_samples must be >= 10, got {n_samples}")
    if k > len(database):
        raise QueryError(
            f"k={k} exceeds database size {len(database)}"
        )

    rng = np.random.default_rng(seed)
    samples = gaussian.sample(n_samples, rng)

    # Candidate cut: any object that is a k-NN of some sample lies within
    # (distance from q to the farthest sample) + (k-th NN distance at q's
    # farthest sample) of q.  We bound the latter by the k-th NN distance
    # of the farthest sample itself (one extra index query).
    center = gaussian.mean
    sample_radii = np.linalg.norm(samples - center, axis=1)
    farthest = samples[int(np.argmax(sample_radii))]
    kth_distance = database.knn(farthest, k)[-1][1]
    cut_radius = float(sample_radii.max() + kth_distance + sample_radii.max())
    candidate_ids = database.range_query(center, cut_radius)
    if not candidate_ids:  # pragma: no cover - cut radius always reaches k-NNs
        raise QueryError("candidate cut returned no objects; database empty?")
    candidate_points = np.vstack([database.point(i) for i in candidate_ids])

    if k == 1 and len(candidate_ids) > 2:
        # Exact bisector pre-filter: candidates whose half-space upper
        # bound is already below theta cannot qualify.  They must still
        # *compete* in the per-sample argmin (removing them would hand
        # their wins to someone else), so only the reporting set shrinks —
        # but when the reporting set is small we can also shrink the
        # competitor set to winners ∪ their rivals. We keep it simple and
        # only restrict reporting.
        upper = bisector_upper_bounds(gaussian, candidate_points)
        reportable = {
            candidate_ids[i] for i in np.nonzero(upper >= theta)[0]
        }
    else:
        reportable = set(candidate_ids)

    # Vectorised k-NN per sample among the candidates.
    wins = np.zeros(len(candidate_ids), dtype=np.int64)
    chunk = max(1, 2_000_000 // max(1, len(candidate_ids)))
    for start in range(0, n_samples, chunk):
        block = samples[start : start + chunk]
        d2 = (
            np.einsum("ij,ij->i", block, block)[:, None]
            - 2.0 * block @ candidate_points.T
            + np.einsum("ij,ij->i", candidate_points, candidate_points)[None, :]
        )
        if k == 1:
            nearest = np.argmin(d2, axis=1)
            np.add.at(wins, nearest, 1)
        else:
            nearest = np.argpartition(d2, k - 1, axis=1)[:, :k]
            np.add.at(wins, nearest.ravel(), 1)

    results = []
    for obj_id, count in zip(candidate_ids, wins):
        p_hat = count / n_samples
        if p_hat >= theta and obj_id in reportable:
            stderr = float(np.sqrt(p_hat * (1.0 - p_hat) / n_samples))
            results.append(NearestNeighborCandidate(obj_id, float(p_hat), stderr))
    results.sort(key=lambda c: (-c.probability, c.obj_id))
    return results

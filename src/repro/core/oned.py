"""The one-dimensional case, solved in closed form.

The paper skips d = 1 ("the one-dimensional case is trivial and can be
implemented using a simple algorithm"); this module supplies that simple
algorithm.  For x ~ N(q, σ²),

    P(|x − o| <= δ) = Φ((o + δ − q)/σ) − Φ((o − δ − q)/σ),

which is maximal at o = q and strictly decreases as |o − q| grows.  The
qualifying objects therefore form one contiguous interval around q, found
by root-finding once per query, after which a sorted array answers the
query by binary search — no integration, no filtering phases.
"""

from __future__ import annotations

import bisect
import math

import numpy as np
from scipy import optimize, special

from repro.errors import QueryError

__all__ = ["interval_probability", "OneDimensionalDatabase"]


def _phi(z: float) -> float:
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


def interval_probability(q: float, sigma: float, o: float, delta: float) -> float:
    """P(|x − o| <= δ) for scalar x ~ N(q, σ²)."""
    if sigma <= 0:
        raise QueryError(f"sigma must be > 0, got {sigma}")
    if delta < 0:
        raise QueryError(f"delta must be >= 0, got {delta}")
    return _phi((o + delta - q) / sigma) - _phi((o - delta - q) / sigma)


def qualifying_interval(
    q: float, sigma: float, delta: float, theta: float
) -> tuple[float, float] | None:
    """The closed interval of object positions with probability >= θ.

    Returns ``None`` when even o = q falls short of θ.  The interval is
    symmetric about q because the probability depends only on |o − q|.
    """
    if not 0.0 < theta < 1.0:
        raise QueryError(f"theta must lie in (0, 1), got {theta}")
    peak = interval_probability(q, sigma, q, delta)
    if peak < theta:
        return None
    if peak == theta:
        return (q, q)

    def deficit(offset: float) -> float:
        return interval_probability(q, sigma, q + offset, delta) - theta

    # Bracket the crossing: the probability decays like a Gaussian tail in
    # the offset, so doubling finds the sign change quickly.
    hi = delta + sigma
    while deficit(hi) > 0.0:
        hi *= 2.0
    offset = float(optimize.brentq(deficit, 0.0, hi, xtol=1e-12))
    return (q - offset, q + offset)


class OneDimensionalDatabase:
    """Sorted scalar objects supporting exact 1-D probabilistic range queries."""

    def __init__(self, values, ids=None):
        arr = np.asarray(values, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise QueryError(f"values must be a non-empty 1-D array, got {arr.shape}")
        id_list = list(ids) if ids is not None else list(range(arr.size))
        if len(id_list) != arr.size:
            raise QueryError(f"{len(id_list)} ids for {arr.size} values")
        order = np.argsort(arr, kind="stable")
        self._values = arr[order]
        self._ids = [id_list[i] for i in order]

    def __len__(self) -> int:
        return self._values.size

    def probabilistic_range_query(
        self, q: float, sigma: float, delta: float, theta: float
    ) -> list[int]:
        """Exact PRQ(q, δ, θ) answer via the closed-form interval."""
        interval = qualifying_interval(q, sigma, delta, theta)
        if interval is None:
            return []
        lo, hi = interval
        start = bisect.bisect_left(self._values.tolist(), lo)
        stop = bisect.bisect_right(self._values.tolist(), hi)
        return sorted(self._ids[start:stop])

    def qualification_probabilities(
        self, q: float, sigma: float, delta: float
    ) -> np.ndarray:
        """Vectorised exact probabilities for every object, in id order given."""
        upper = special.ndtr((self._values + delta - q) / sigma)
        lower = special.ndtr((self._values - delta - q) / sigma)
        return upper - lower

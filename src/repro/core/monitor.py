"""Continuous monitoring for moving imprecise query objects.

The paper's motivating applications (robot localization, moving-object
monitoring) issue a *stream* of probabilistic range queries from nearby
locations with slowly drifting covariances.  Re-running Phase 1 from
scratch each epoch wastes index work: consecutive search regions overlap
almost entirely.

``MonitoringSession`` caches a candidate superset: the first query
retrieves an *expanded* rectangle (the current search region scaled by a
margin) and keeps its ids and points; every subsequent query whose search
rectangle still fits inside the cached rectangle is answered from the
cache with one vectorised containment test — zero index accesses, results
provably identical to a fresh query because the cache is a superset of
the new Phase-1 region.  When the object drifts out, the cache is rebuilt
around the new region.
"""

from __future__ import annotations

import numpy as np

from repro.core.database import SpatialDatabase
from repro.core.engine import QueryEngine, QueryResult
from repro.core.query import ProbabilisticRangeQuery
from repro.core.stats import QueryStats
from repro.core.strategies import Strategy, make_strategies
from repro.errors import QueryError
from repro.gaussian.distribution import Gaussian
from repro.geometry.mbr import Rect
from repro.integrate.base import ProbabilityIntegrator

__all__ = ["MonitoringSession"]


class _Cache:
    __slots__ = ("rect", "ids", "points")

    def __init__(self, rect: Rect, ids: list[int], points: np.ndarray):
        self.rect = rect
        self.ids = ids
        self.points = points


class MonitoringSession:
    """A reusable query session with candidate caching for moving queries.

    Parameters
    ----------
    database:
        The target objects.  The cache assumes the database is not mutated
        during the session; call :meth:`invalidate` after updates.
    strategies, integrator:
        Engine configuration, as in
        :meth:`repro.core.database.SpatialDatabase.engine`.
    margin:
        Relative enlargement of the cached rectangle (0.5 = each side 50 %
        longer than the current search region).  Larger margins survive
        longer drifts but hold more cached candidates.
    """

    def __init__(
        self,
        database: SpatialDatabase,
        *,
        strategies: str | list[Strategy] = "all",
        integrator: ProbabilityIntegrator | None = None,
        margin: float = 0.5,
    ):
        if margin < 0:
            raise QueryError(f"margin must be >= 0, got {margin}")
        strategy_list = (
            make_strategies(strategies)
            if isinstance(strategies, str)
            else list(strategies)
        )
        self._database = database
        self._engine = QueryEngine(database.index, strategy_list, integrator)
        self.margin = float(margin)
        self._cache: _Cache | None = None
        self.cache_hits = 0
        self.cache_misses = 0

    def invalidate(self) -> None:
        """Drop the cached candidates (call after database updates)."""
        self._cache = None

    def query(
        self, gaussian: Gaussian, delta: float, theta: float
    ) -> QueryResult:
        """Execute PRQ(gaussian, delta, theta), reusing cached candidates."""
        query = ProbabilisticRangeQuery(gaussian, delta, theta)
        stats = QueryStats()
        with stats.time_phase("search"):
            rect = self._engine.prepare_search(query, stats)
            if rect is None:
                return QueryResult((), stats)
            cache = self._cache
            if cache is not None and cache.rect.contains_rect(rect):
                stats.cache_hit = True
                self.cache_hits += 1
                if cache.ids:
                    mask = rect.contains_points(cache.points)
                    slots = np.nonzero(mask)[0]
                    candidate_ids = [cache.ids[i] for i in slots]
                    points = cache.points[slots]
                else:
                    candidate_ids, points = [], np.empty((0, query.dim))
            else:
                self.cache_misses += 1
                expanded = Rect.from_center(
                    rect.center, (rect.extents / 2.0) * (1.0 + self.margin)
                )
                cached_ids = self._database.index.range_search_rect(expanded)
                cached_points = (
                    np.vstack([self._database.point(i) for i in cached_ids])
                    if cached_ids
                    else np.empty((0, query.dim))
                )
                self._cache = _Cache(expanded, cached_ids, cached_points)
                if cached_ids:
                    mask = rect.contains_points(cached_points)
                    slots = np.nonzero(mask)[0]
                    candidate_ids = [cached_ids[i] for i in slots]
                    points = cached_points[slots]
                else:
                    candidate_ids, points = [], np.empty((0, query.dim))
            stats.retrieved = len(candidate_ids)
        if not candidate_ids:
            return QueryResult((), stats)
        return self._engine.filter_and_integrate(query, candidate_ids, points, stats)

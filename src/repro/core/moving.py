"""A moving-object database with staleness-aware probabilistic queries.

The paper's second motivating setting (Section I): a server tracks moving
objects whose positions are updated infrequently to keep load down, so the
*query object's* position between updates is imprecise.  This module
provides that world:

- :class:`MovingObject` — linear motion ``position(t) = p0 + v·(t − t0)``;
- :class:`MovingObjectDatabase` — holds a fleet, advances simulation time,
  and rebuilds its spatial snapshot lazily;
- :func:`stale_gaussian` — the standard diffusion model for a position
  last reported at ``t_report``: N(p + v·age, Σ₀ + age·D), uncertainty
  growing linearly with information age (Brownian-drift error).

``query_from_object`` ties it together: object i queries its neighbourhood
using its *own* stale Gaussian as the PRQ query object — exactly the
scenario the paper's probabilistic range query was designed for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.database import SpatialDatabase
from repro.core.engine import QueryResult
from repro.errors import QueryError
from repro.gaussian.distribution import Gaussian
from repro.integrate.base import ProbabilityIntegrator

__all__ = ["MovingObject", "MovingObjectDatabase", "stale_gaussian"]

_ArrayLike = Sequence[float] | np.ndarray


def stale_gaussian(
    position: _ArrayLike,
    velocity: _ArrayLike,
    age: float,
    *,
    base_sigma: np.ndarray | None = None,
    diffusion: float = 1.0,
) -> Gaussian:
    """The belief about an object last reported ``age`` time units ago.

    The mean is dead-reckoned (``position + velocity·age``); the covariance
    is the report-time covariance plus ``age·diffusion·I`` — the linear
    variance growth of a random-walk disturbance.
    """
    p = np.asarray(position, dtype=float)
    v = np.asarray(velocity, dtype=float)
    if p.shape != v.shape:
        raise QueryError(
            f"position and velocity shapes differ: {p.shape} vs {v.shape}"
        )
    if age < 0:
        raise QueryError(f"age must be >= 0, got {age}")
    if diffusion <= 0:
        raise QueryError(f"diffusion must be > 0, got {diffusion}")
    dim = p.size
    sigma = np.zeros((dim, dim)) if base_sigma is None else np.asarray(base_sigma)
    # A zero-age, zero-base covariance would be singular; keep a floor.
    floor = 1e-9
    return Gaussian(p + v * age, sigma + (age * diffusion + floor) * np.eye(dim))


@dataclass
class MovingObject:
    """Linear motion: ``position(t) = position0 + velocity · (t − t0)``."""

    obj_id: int
    position0: np.ndarray
    velocity: np.ndarray
    t0: float = 0.0

    def __post_init__(self) -> None:
        self.position0 = np.asarray(self.position0, dtype=float)
        self.velocity = np.asarray(self.velocity, dtype=float)
        if self.position0.shape != self.velocity.shape or self.position0.ndim != 1:
            raise QueryError(
                f"position0 {self.position0.shape} and velocity "
                f"{self.velocity.shape} must be equal-shape vectors"
            )

    def position_at(self, t: float) -> np.ndarray:
        return self.position0 + self.velocity * (t - self.t0)


class MovingObjectDatabase:
    """A fleet of linearly moving objects with time-travel snapshots.

    The spatial snapshot (an STR-loaded R*-tree) is rebuilt lazily when the
    query time changes — rebuild cost is linear and far below one Phase-3
    integration batch, so eager incremental maintenance is not worth it at
    this scale.
    """

    def __init__(self, objects: Sequence[MovingObject]):
        if not objects:
            raise QueryError("need at least one moving object")
        ids = [obj.obj_id for obj in objects]
        if len(set(ids)) != len(ids):
            raise QueryError("duplicate object ids")
        dims = {obj.position0.size for obj in objects}
        if len(dims) != 1:
            raise QueryError(f"objects have mixed dimensions {sorted(dims)}")
        self._objects = {obj.obj_id: obj for obj in objects}
        self._dim = dims.pop()
        self._snapshot_time: float | None = None
        self._snapshot: SpatialDatabase | None = None

    @property
    def dim(self) -> int:
        return self._dim

    def __len__(self) -> int:
        return len(self._objects)

    def object(self, obj_id: int) -> MovingObject:
        try:
            return self._objects[obj_id]
        except KeyError:
            raise QueryError(f"unknown object id {obj_id!r}") from None

    def snapshot_at(self, t: float) -> SpatialDatabase:
        """The exact positions of every object at time ``t``, indexed."""
        if self._snapshot is None or self._snapshot_time != t:
            ids = sorted(self._objects)
            points = np.vstack(
                [self._objects[i].position_at(t) for i in ids]
            )
            self._snapshot = SpatialDatabase(points, ids=ids)
            self._snapshot_time = t
        return self._snapshot

    def query_from_object(
        self,
        obj_id: int,
        t: float,
        last_report_time: float,
        delta: float,
        theta: float,
        *,
        diffusion: float = 1.0,
        strategies: str = "all",
        integrator: ProbabilityIntegrator | None = None,
        include_self: bool = False,
    ) -> QueryResult:
        """Object ``obj_id`` asks: who is within δ of me, with P >= θ?

        The querier's own position is *stale*: it was last reported at
        ``last_report_time`` and is dead-reckoned forward with linearly
        growing uncertainty.  The targets are taken at their true time-``t``
        positions (the server tracks them; the paper's asymmetric setting).
        """
        if last_report_time > t:
            raise QueryError(
                f"last_report_time {last_report_time} is after query time {t}"
            )
        querier = self.object(obj_id)
        reported_position = querier.position_at(last_report_time)
        belief = stale_gaussian(
            reported_position,
            querier.velocity,
            t - last_report_time,
            diffusion=diffusion,
        )
        snapshot = self.snapshot_at(t)
        result = snapshot.probabilistic_range_query(
            belief, delta, theta, strategies=strategies, integrator=integrator
        )
        if include_self or obj_id not in result:
            return result
        filtered = tuple(i for i in result.ids if i != obj_id)
        result.stats.results = len(filtered)
        return QueryResult(filtered, result.stats)

"""Cost-based adaptive query planning (``strategy="auto"``).

The paper's Tables I–III show that no fixed filter configuration wins
everywhere: pre-approximation pays off only when it prunes enough, and
the right combination depends on the query's shape (Σ), range (δ) and
threshold (θ).  ``QueryPlanner`` picks the cheapest plan per query
instead of trusting the caller:

1. **Enumerate** candidate plans — every (strategy combo × Phase-1 mode ×
   integrator) from its configured menus.
2. **Predict** each plan's workload: expected Phase-1 retrievals from a
   :class:`repro.core.selectivity.SelectivityEstimator` (uniform-density
   fallback above d = 3) and expected Phase-3 candidates from the
   strategies' own prepared regions (BF's catalog-derived α∥/α⊥ radii,
   RR/OR boxes).
3. **Score** with calibrated per-strategy and per-integrator cost
   coefficients (:class:`PlannerCostModel`,
   ``ProbabilityIntegrator.cost_per_candidate``) and pick the minimum.

Determinism contract: plans are a *pure function of the quantized query
shape*.  The planner quantizes (Σ-spectrum, δ, θ) onto a log grid, plans
against a canonical query reconstructed from the quantized key (centered
at the data centre), and memoizes the decision in a thread-safe LRU
cache.  Because the decision never depends on the concrete query center,
batch order or cache warmth, ``run_batch`` stays bit-identical across
worker counts and across cold/warm caches — repeated workload shapes
simply reuse their plan.

Kinded queries (:mod:`repro.core.kinds`) plan through the same cache:
mixtures are planned on their moment-matched envelope over the normal
combo menu, while uncertain-target and k-NN queries get a single fixed
kind plan whose spec is the kind name — the engine recognizes that the
spec is not a strategy combo and lets ``adapt_pipeline`` install the
kind's dedicated stages.  The cache key gains a kind tag plus the kind
parameters that change the plan (target-covariance spectra, component
count, ``k``).
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

import numpy as np

from repro.core.kinds import query_kind
from repro.core.query import ProbabilisticRangeQuery
from repro.core.selectivity import SelectivityEstimator
from repro.core.stages import combined_search_rect
from repro.core.strategies import UNKNOWN, Strategy, make_strategies
from repro.errors import QueryError
from repro.gaussian.convolve import conservative_reach_alpha
from repro.gaussian.distribution import Gaussian
from repro.geometry.mbr import Rect
from repro.integrate.base import ProbabilityIntegrator

__all__ = [
    "PlannerCostModel",
    "PlanChoice",
    "PlanDecision",
    "QueryPlanner",
    "quantize_log",
    "quantized_shape_key",
]


def quantize_log(value: float, bins_per_efold: int) -> int:
    """Quantize a positive scalar onto a log grid (``bins_per_efold``
    bins per e-fold) — the planner's cache-key scheme, exposed for reuse
    (the serving layer's result cache keys with the same scheme)."""
    return round(math.log(max(value, 1e-300)) * bins_per_efold)


def quantized_shape_key(
    query: ProbabilisticRangeQuery, bins_per_efold: int
) -> tuple:
    """The quantized (dim, Σ-spectrum, δ, θ) shape of a query.

    Two queries share a shape key iff their covariance spectra, ranges
    and thresholds land in the same log-grid bins — the equivalence the
    plan cache memoizes under, and the bucketing the serving layer's
    result cache groups entries by.
    """
    spectrum = tuple(
        quantize_log(ev, bins_per_efold)
        for ev in np.sort(query.gaussian.eigenvalues)
    )
    return (
        query.dim,
        spectrum,
        quantize_log(query.delta, bins_per_efold),
        quantize_log(query.theta, bins_per_efold),
    )

#: Strategy combinations the planner enumerates by default — the paper's
#: six configurations.  EM is excluded from the default menu: its
#: per-candidate root find makes the classify coefficient data-dependent.
DEFAULT_COMBOS: tuple[str, ...] = (
    "rr",
    "bf",
    "rr+bf",
    "rr+or",
    "bf+or",
    "all",
)


def _default_prepare_seconds() -> dict[str, float]:
    return {"RR": 2e-5, "OR": 4e-5, "BF": 2e-4, "EM": 2e-5}


def _default_classify_seconds() -> dict[str, float]:
    return {"RR": 1.5e-7, "OR": 2.5e-7, "BF": 1.2e-7, "EM": 2.0e-5}


@dataclass(frozen=True)
class PlannerCostModel:
    """Calibrated cost coefficients, all in seconds.

    The defaults were measured on the 2-D road workload (50k points,
    R*-tree); they only need to be *relatively* right — the planner
    compares plans against each other, never against a wall clock.  Pass
    a replacement to :class:`QueryPlanner` to recalibrate, e.g. after
    profiling on different hardware.
    """

    #: Fixed Phase-1 overhead (tree descent, result assembly).
    search_base: float = 5e-5
    #: Per retrieved candidate: index walk + point gather.
    search_per_object: float = 2.5e-7
    #: Per-strategy `prepare()` cost (BF's noncentral-χ² root finds
    #: dominate; the preparation LRU caches amortize them across a
    #: workload, so this is the *cold* figure scaled down).
    prepare_seconds: Mapping[str, float] = field(
        default_factory=_default_prepare_seconds
    )
    #: Per-strategy `classify_many()` cost per candidate row.
    classify_seconds: Mapping[str, float] = field(
        default_factory=_default_classify_seconds
    )
    #: Fallbacks for strategies missing from the maps.
    default_prepare: float = 5e-5
    default_classify: float = 5e-7

    def strategy_cost(self, names: Sequence[str], retrieved: float) -> float:
        """Prepare + classify cost of a strategy list over ``retrieved`` rows."""
        cost = 0.0
        for name in names:
            cost += self.prepare_seconds.get(name, self.default_prepare)
            cost += (
                self.classify_seconds.get(name, self.default_classify)
                * retrieved
            )
        return cost


@dataclass(frozen=True)
class PlanChoice:
    """One scored candidate plan."""

    #: Strategy spec string (``"rr+bf"`` …) — feed to ``make_strategies``.
    strategies: str
    #: The individual strategy names, execution order.
    strategy_names: tuple[str, ...]
    #: Phase-1 policy: ``"intersect"`` or ``"primary"``.
    phase1: str
    #: Name of the Phase-3 integrator this plan assumes.
    integrator: str
    #: Predicted Phase-1 retrievals.
    predicted_retrieved: float
    #: Predicted Phase-3 candidates (after all filters).
    predicted_candidates: float
    #: Total predicted cost under the cost model, seconds.
    predicted_seconds: float


@dataclass(frozen=True)
class PlanDecision:
    """The planner's verdict for one quantized query shape."""

    chosen: PlanChoice
    #: Every plan that was scored, cheapest first.
    considered: tuple[PlanChoice, ...]
    #: The quantized cache key the decision is memoized under.
    key: tuple
    #: True when this decision came from the LRU cache.
    cache_hit: bool = False


class QueryPlanner:
    """Chooses the cheapest (strategies × phase-1 × integrator) per query.

    Parameters
    ----------
    total_points:
        Dataset size, for the uniform-density fallback predictions.
    data_bounds:
        Bounding rectangle of the dataset; its centre is the canonical
        query location plans are computed at.
    estimator:
        Optional :class:`SelectivityEstimator` (d ≤ 3).  Without one the
        planner assumes uniform density inside ``data_bounds``.
    combos:
        Strategy spec strings to enumerate.
    phase1_modes:
        Phase-1 policies to enumerate (both paper modes by default).
    integrators:
        Optional menu of alternative Phase-3 integrators to enumerate in
        addition to the caller's own.  Off by default so the planner
        never silently changes the caller's accuracy contract.
    cost_model:
        Replacement :class:`PlannerCostModel` coefficients.
    cache_size:
        LRU plan-cache capacity (distinct quantized workload shapes).
    bins_per_efold:
        Quantization resolution of the cache key: each of log λᵢ, log δ
        and log θ is rounded to 1/``bins_per_efold`` — coarser bins mean
        more cache reuse but blunter plans.
    n_samples:
        Monte Carlo budget per candidate-count prediction (planning-time
        only; executed results never depend on it).
    rtheta_lookup, bf_lookup, fringe_filter:
        Forwarded to ``make_strategies`` for both planning and the
        strategies the engine executes, so catalog-driven deployments
        plan with the same conservative radii they run with.
    targets:
        Optional :class:`repro.core.kinds.TargetCovarianceTable`.  Lets
        uncertain-target plans predict the convolved Phase-1 reach from
        the registered target spectra; without one, uncertain queries
        are planned as if the targets were exact points.
    """

    def __init__(
        self,
        *,
        total_points: int,
        data_bounds: Rect,
        estimator: SelectivityEstimator | None = None,
        combos: Sequence[str] = DEFAULT_COMBOS,
        phase1_modes: Sequence[str] = ("intersect", "primary"),
        integrators: Sequence[ProbabilityIntegrator] | None = None,
        cost_model: PlannerCostModel | None = None,
        cache_size: int = 256,
        bins_per_efold: int = 4,
        n_samples: int = 4_000,
        rtheta_lookup=None,
        bf_lookup=None,
        fringe_filter: str = "exact",
        targets=None,
    ):
        if total_points < 1:
            raise QueryError(f"total_points must be >= 1, got {total_points}")
        if not combos:
            raise QueryError("at least one strategy combo is required")
        for mode in phase1_modes:
            if mode not in ("intersect", "primary"):
                raise QueryError(f"unknown phase1 mode {mode!r}")
        if not phase1_modes:
            raise QueryError("at least one phase1 mode is required")
        if cache_size < 1:
            raise QueryError(f"cache_size must be >= 1, got {cache_size}")
        if bins_per_efold < 1:
            raise QueryError(
                f"bins_per_efold must be >= 1, got {bins_per_efold}"
            )
        if n_samples < 100:
            raise QueryError(f"n_samples must be >= 100, got {n_samples}")
        self._total = int(total_points)
        self._bounds = data_bounds
        self._estimator = estimator
        self.combos = tuple(combos)
        self.phase1_modes = tuple(phase1_modes)
        self._integrators = {i.name: i for i in integrators or ()}
        self.cost_model = cost_model or PlannerCostModel()
        self._bins = int(bins_per_efold)
        self._n_samples = int(n_samples)
        self._rtheta_lookup = rtheta_lookup
        self._bf_lookup = bf_lookup
        self._fringe_filter = fringe_filter
        self._targets = targets
        self._cache: OrderedDict[tuple, PlanDecision] = OrderedDict()
        self._cache_size = int(cache_size)
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._rotations: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    def plan(
        self,
        query: ProbabilisticRangeQuery,
        integrator: ProbabilityIntegrator,
    ) -> PlanDecision:
        """The cheapest plan for ``query`` under the cost model.

        Memoized per quantized (Σ-spectrum, δ, θ, integrator) shape; the
        decision is a pure function of that key, so identical shapes get
        identical plans regardless of arrival order or cache state.
        """
        key = self._cache_key(query, integrator)
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self._hits += 1
                return replace(cached, cache_hit=True)
        decision = self._plan_key(key, integrator)
        with self._lock:
            self._misses += 1
            self._cache[key] = decision
            self._cache.move_to_end(key)
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return decision

    def build_strategies(self, spec: str) -> list[Strategy]:
        """Fresh strategy instances for a chosen plan (engine-executable)."""
        return make_strategies(
            spec,
            rtheta_lookup=self._rtheta_lookup,
            bf_lookup=self._bf_lookup,
            fringe_filter=self._fringe_filter,
        )

    def integrator_for(self, name: str) -> ProbabilityIntegrator | None:
        """The menu integrator behind a plan's choice, if any."""
        return self._integrators.get(name)

    def cache_info(self) -> dict[str, int]:
        """Plan-cache counters: hits, misses, current and maximum size."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "currsize": len(self._cache),
                "maxsize": self._cache_size,
            }

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()

    def publish_metrics(self, obs) -> None:
        """Snapshot plan-cache state into an Observability sink's gauges.

        Sets ``repro_planner_cache_hits`` / ``_misses`` / ``_entries`` /
        ``_size`` (see ``docs/observability.md``).  The engine calls this
        once per ``execute``/``run_batch`` when observability is enabled;
        per-decision hit/miss *counters* and prediction-error histograms
        are instead derived from :class:`~repro.core.stats.QueryStats` in
        ``Observability.record_query``.
        """
        if obs is None or obs.metrics is None:
            return
        info = self.cache_info()
        registry = obs.metrics
        registry.gauge(
            "repro_planner_cache_hits",
            "Plan-cache hits since planner construction.",
        ).set(info["hits"])
        registry.gauge(
            "repro_planner_cache_misses",
            "Plan-cache misses since planner construction.",
        ).set(info["misses"])
        registry.gauge(
            "repro_planner_cache_entries",
            "Plans currently resident in the cache.",
        ).set(info["currsize"])
        registry.gauge(
            "repro_planner_cache_size",
            "Configured plan-cache capacity.",
        ).set(info["maxsize"])

    # ------------------------------------------------------------------
    # Quantization: cache key <-> canonical query
    # ------------------------------------------------------------------

    def _cache_key(
        self,
        query: ProbabilisticRangeQuery,
        integrator: ProbabilityIntegrator,
    ) -> tuple:
        """Quantized memoization key; kinded queries append a kind tag.

        Exact-target PRQ keys keep their historical 5-tuple layout.  A
        kinded query appends ``(kind, *extras)`` where the extras are the
        kind parameters that change the plan: the quantized target
        covariance spectra (uncertain), the component count (mixture), or
        ``(k, n_samples)`` (k-NN).
        """
        base = quantized_shape_key(query, self._bins) + (integrator.name,)
        kind = query_kind(query)
        if kind == "prq":
            return base
        if kind == "uncertain":
            spectra: tuple = ()
            if self._targets is not None:
                spectra = tuple(
                    tuple(quantize_log(ev, self._bins) for ev in spectrum)
                    for spectrum in self._targets.spectra()
                )
            return base + (kind, spectra)
        if kind == "mixture":
            return base + (kind, len(query.mixture.components))
        if kind == "knn":
            return base + (kind, query.k, query.n_samples)
        return base + (kind,)

    def _dequantize(self, q: int) -> float:
        return math.exp(q / self._bins)

    def _generic_rotation(self, dim: int) -> np.ndarray:
        """A fixed, deterministic 'generic orientation' rotation per dim.

        The cache key keeps only the Σ *spectrum*, so the canonical query
        must pick some orientation.  Axis-aligned would be the worst
        prior: it makes RR's bounding box coincide with OR's oblique box
        and hides OR's pruning power entirely, while real covariances are
        almost never axis-aligned.  A fixed random rotation is the
        generic case.
        """
        rotation = self._rotations.get(dim)
        if rotation is None:
            rng = np.random.default_rng(0)
            q, r = np.linalg.qr(rng.standard_normal((dim, dim)))
            rotation = q * np.sign(np.diag(r))
            self._rotations[dim] = rotation
        return rotation

    def _canonical_query(self, key: tuple) -> ProbabilisticRangeQuery:
        """Rebuild the representative query of a cache key.

        Centered at the data centre, with the quantized spectrum rotated
        into a fixed generic orientation — the plan must not depend on
        any per-query detail finer than the key, or cache reuse would
        break the determinism contract.
        """
        dim, spectrum, qdelta, qtheta = key[:4]
        eigenvalues = np.array([self._dequantize(q) for q in spectrum])
        rotation = self._generic_rotation(dim)
        sigma = (rotation * eigenvalues) @ rotation.T
        sigma = 0.5 * (sigma + sigma.T)
        delta = self._dequantize(qdelta)
        theta = min(max(self._dequantize(qtheta), 1e-9), 1.0 - 1e-9)
        return ProbabilisticRangeQuery(
            Gaussian(self._bounds.center, sigma), delta, theta
        )

    # ------------------------------------------------------------------
    # Prediction + scoring
    # ------------------------------------------------------------------

    def _estimate_in_rect(self, rect: Rect | None) -> float:
        if rect is None:
            return 0.0
        if self._estimator is not None:
            return self._estimator.estimate_in_rect(rect)
        clipped = rect.intersection(self._bounds)
        if clipped is None:
            return 0.0
        bounds_volume = self._bounds.volume()
        if bounds_volume <= 0.0:
            return float(self._total)
        return self._total * clipped.volume() / bounds_volume

    def _shared_candidate_estimates(
        self,
        combo_strategies: Mapping[str, list[Strategy]],
        combo_rects: Mapping[str, Rect | None],
    ) -> dict[str, float]:
        """Predicted Phase-3 candidates per combo from one shared sample set.

        One uniform sample set over the union of every combo's Phase-1
        rectangle, one ``classify_many`` pass per *distinct* strategy and
        one density lookup serve all combos — common random numbers, so
        the predicted ranking between combos is far more stable than
        independent per-combo estimates (and ~|combos|× cheaper).

        The filters reject everything outside their own regions, so each
        combo's undecided region — hence its Phase-3 candidate count — is
        the same for every Phase-1 mode; only the retrieved count differs.
        """
        rects = [rect for rect in combo_rects.values() if rect is not None]
        estimates = {combo: 0.0 for combo in combo_rects}
        if not rects:
            return estimates
        union = Rect(
            np.min([rect.lows for rect in rects], axis=0),
            np.max([rect.highs for rect in rects], axis=0),
        )
        rng = np.random.default_rng(0)
        samples = (
            union.lows + rng.random((self._n_samples, union.dim)) * union.extents
        )
        unknown: dict[str, np.ndarray] = {}
        for combo, strategies in combo_strategies.items():
            if combo_rects[combo] is None:
                continue
            for strategy in strategies:
                if strategy.name not in unknown:
                    unknown[strategy.name] = (
                        strategy.classify_many(samples) == UNKNOWN
                    )
        if self._estimator is not None:
            weights = self._estimator.density_at(samples)
        else:
            bounds_volume = self._bounds.volume()
            density = self._total / bounds_volume if bounds_volume > 0 else 0.0
            weights = np.where(
                self._bounds.contains_points(samples), density, 0.0
            )
        cell = union.volume() / self._n_samples
        for combo, rect in combo_rects.items():
            if rect is None:
                continue
            mask = rect.contains_points(samples)
            for strategy in combo_strategies[combo]:
                mask &= unknown[strategy.name]
            estimates[combo] = float(weights[mask].sum() * cell)
        return estimates

    def _fixed_kind_plan(
        self,
        key: tuple,
        kind: str,
        names: tuple[str, ...],
        integrator: ProbabilityIntegrator,
    ) -> PlanDecision:
        """The single fixed plan for kinds with no strategy menu.

        Uncertain-target and k-NN queries run a dedicated kind strategy
        (convolved-reach filter, sample-driven cut) that has no exact-
        target substitute, so the planner's job reduces to predicting the
        workload.  The spec string is the *kind name* — deliberately not a
        ``STRATEGY_COMBINATIONS`` member, which tells the engine to pass
        its base strategies through to :func:`repro.core.kinds.adapt_pipeline`
        untouched.
        """
        canonical = self._canonical_query(key)
        if kind == "uncertain":
            max_eig = self._targets.max_eig if self._targets is not None else 0.0
            alpha = conservative_reach_alpha(
                canonical.gaussian, canonical.delta, canonical.theta, max_eig
            )
            rect = (
                None
                if alpha is None
                else Rect.from_center(
                    canonical.center, np.full(canonical.dim, alpha)
                )
            )
            retrieved = self._estimate_in_rect(rect)
        else:  # k-NN: the cut radius is sample-driven; budget a full pass.
            retrieved = float(self._total)
        candidates = retrieved
        cost = (
            self.cost_model.search_base
            + self.cost_model.search_per_object * retrieved
            + self.cost_model.strategy_cost(names, retrieved)
            + integrator.cost_per_candidate * candidates
        )
        choice = PlanChoice(
            strategies=kind,
            strategy_names=names,
            phase1="intersect",
            integrator=integrator.name,
            predicted_retrieved=retrieved,
            predicted_candidates=candidates,
            predicted_seconds=cost,
        )
        return PlanDecision(chosen=choice, considered=(choice,), key=key)

    def _plan_key(
        self, key: tuple, caller_integrator: ProbabilityIntegrator
    ) -> PlanDecision:
        kind = key[5] if len(key) > 5 else "prq"
        if kind == "uncertain":
            return self._fixed_kind_plan(
                key, kind, ("UT",), caller_integrator
            )
        if kind == "knn":
            return self._fixed_kind_plan(
                key, kind, ("KNN",), caller_integrator
            )
        # Exact-target PRQs and mixtures share the combo menu: a mixture
        # is planned on its moment-matched envelope, and the chosen combo
        # becomes the per-component filter template inside
        # :class:`repro.core.kinds.MixtureFilterStrategy` — which runs the
        # combo's prepare/classify once *per component*, so the Phase-2
        # term below is charged that many times.
        components = key[6] if kind == "mixture" else 1
        canonical = self._canonical_query(key)
        integrators = [caller_integrator] + [
            i
            for i in self._integrators.values()
            if i.name != caller_integrator.name
        ]
        # Combos share one prepared instance per strategy name: BF's α
        # root finds and RR/OR's r_θ lookups run once per cache key, not
        # once per combo.
        pool: dict[str, Strategy] = {}
        combo_strategies: dict[str, list[Strategy]] = {}
        for combo in self.combos:
            combo_strategies[combo] = [
                pool.setdefault(s.name, s) for s in self.build_strategies(combo)
            ]
        for strategy in pool.values():
            strategy.prepare(canonical)
        combo_empty = {
            combo: any(s.proves_empty for s in strategies)
            for combo, strategies in combo_strategies.items()
        }
        combo_rects = {
            combo: (
                None
                if combo_empty[combo]
                else combined_search_rect(strategies, phase1="intersect")
            )
            for combo, strategies in combo_strategies.items()
        }
        candidate_counts = self._shared_candidate_estimates(
            combo_strategies, combo_rects
        )
        choices: list[PlanChoice] = []
        for combo in self.combos:
            strategies = combo_strategies[combo]
            names = tuple(s.name for s in strategies)
            candidates = candidate_counts[combo]
            for mode in self.phase1_modes:
                mode_rect = (
                    None
                    if combo_empty[combo]
                    else combined_search_rect(strategies, phase1=mode)
                )
                retrieved = self._estimate_in_rect(mode_rect)
                for integrator in integrators:
                    cost = (
                        self.cost_model.search_base
                        + self.cost_model.search_per_object * retrieved
                        + components
                        * self.cost_model.strategy_cost(names, retrieved)
                        + integrator.cost_per_candidate * candidates
                    )
                    choices.append(
                        PlanChoice(
                            strategies=combo,
                            strategy_names=names,
                            phase1=mode,
                            integrator=integrator.name,
                            predicted_retrieved=retrieved,
                            predicted_candidates=candidates,
                            predicted_seconds=cost,
                        )
                    )
        # Deterministic ordering: cost, then menu order, so ties never
        # depend on dict iteration or float noise across processes.
        order = {combo: i for i, combo in enumerate(self.combos)}
        modes = {mode: i for i, mode in enumerate(self.phase1_modes)}
        choices.sort(
            key=lambda c: (
                c.predicted_seconds,
                order[c.strategies],
                modes[c.phase1],
            )
        )
        return PlanDecision(
            chosen=choices[0], considered=tuple(choices), key=key
        )

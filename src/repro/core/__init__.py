"""The paper's primary contribution: probabilistic range query processing.

- :class:`ProbabilisticRangeQuery` — the PRQ(q, δ, θ) specification
  (Definition 2);
- :mod:`~repro.core.strategies` — the RR, OR and BF filtering strategies
  (Section IV) behind one `Strategy` interface;
- :class:`QueryEngine` — the generic three-phase processor (Section III-B)
  that combines any subset of strategies;
- :class:`SpatialDatabase` — the user-facing façade tying data, index,
  catalogs, strategies and integrator together;
- :mod:`~repro.core.kinds` — the query-kind abstraction folding the
  paper's future-work extensions (uncertain targets, Gaussian-mixture
  query objects, probabilistic k-NN) into the same three-phase stage
  pipeline as exact-target PRQs (see ``docs/query_types.md``);
- legacy per-extension entry points kept for compatibility: sampling
  k-NN (:mod:`~repro.core.nn`), the deprecated
  :class:`~repro.core.uncertain.UncertainDatabase` shim, and the
  closed-form 1-D case (:mod:`~repro.core.oned`).
"""

from repro.core.query import ProbabilisticRangeQuery
from repro.core.stats import BatchStats, QueryStats
from repro.core.strategies import (
    ACCEPT,
    REJECT,
    UNKNOWN,
    BoundingFunctionStrategy,
    EllipsoidStrategy,
    ObliqueStrategy,
    RectilinearStrategy,
    Strategy,
    make_strategies,
)
from repro.core.engine import BatchResult, QueryEngine, QueryPlan, QueryResult
from repro.core.kinds import (
    QUERY_KINDS,
    KNNQuery,
    MixtureRangeQuery,
    TargetCovarianceTable,
    UncertainTargetQuery,
    query_kind,
)
from repro.core.planner import (
    PlanChoice,
    PlanDecision,
    PlannerCostModel,
    QueryPlanner,
)
from repro.core.mixture import MixtureQueryEngine, mixture_range_query
from repro.core.database import SpatialDatabase
from repro.core.monitor import MonitoringSession
from repro.core.sweep import ThresholdSweepResult, threshold_sweep
from repro.core.selectivity import SelectivityEstimator
from repro.core.moving import MovingObject, MovingObjectDatabase, stale_gaussian
from repro.core.nn import probabilistic_nearest_neighbors
from repro.core.uncertain import UncertainObject, UncertainDatabase
from repro.core.oned import OneDimensionalDatabase, interval_probability

__all__ = [
    "ProbabilisticRangeQuery",
    "QueryStats",
    "BatchStats",
    "BatchResult",
    "Strategy",
    "RectilinearStrategy",
    "ObliqueStrategy",
    "BoundingFunctionStrategy",
    "EllipsoidStrategy",
    "make_strategies",
    "ACCEPT",
    "REJECT",
    "UNKNOWN",
    "QueryEngine",
    "QUERY_KINDS",
    "query_kind",
    "UncertainTargetQuery",
    "MixtureRangeQuery",
    "KNNQuery",
    "TargetCovarianceTable",
    "QueryPlan",
    "QueryPlanner",
    "PlannerCostModel",
    "PlanChoice",
    "PlanDecision",
    "MixtureQueryEngine",
    "mixture_range_query",
    "QueryResult",
    "SpatialDatabase",
    "MonitoringSession",
    "ThresholdSweepResult",
    "threshold_sweep",
    "SelectivityEstimator",
    "MovingObject",
    "MovingObjectDatabase",
    "stale_gaussian",
    "probabilistic_nearest_neighbors",
    "UncertainObject",
    "UncertainDatabase",
    "OneDimensionalDatabase",
    "interval_probability",
]

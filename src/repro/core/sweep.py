"""Amortized evaluation of one query at many probability thresholds.

Exploring "how does the answer change with θ" (the paper's §V-B-3 sweep,
or an end user tuning confidence) naively costs one full query per θ.
But the expensive quantity — each candidate's qualification probability —
does not depend on θ at all.  :func:`threshold_sweep` evaluates the
probabilities once over the *widest* region (the smallest θ requested) and
then answers every threshold by comparison, guaranteeing mutually
consistent, monotonically nested answer sets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.database import SpatialDatabase
from repro.core.query import ProbabilisticRangeQuery
from repro.core.strategies import REJECT, make_strategies
from repro.errors import QueryError
from repro.gaussian.distribution import Gaussian
from repro.integrate.base import ProbabilityIntegrator
from repro.integrate.exact import ExactIntegrator

__all__ = ["ThresholdSweepResult", "threshold_sweep"]


@dataclass(frozen=True)
class ThresholdSweepResult:
    """Probabilities for every candidate plus per-θ answer sets."""

    candidate_ids: tuple[int, ...]
    probabilities: tuple[float, ...]
    answers: dict[float, tuple[int, ...]]

    def answer(self, theta: float) -> tuple[int, ...]:
        try:
            return self.answers[theta]
        except KeyError:
            raise QueryError(
                f"theta={theta} was not part of the sweep; available: "
                f"{sorted(self.answers)}"
            ) from None


def threshold_sweep(
    database: SpatialDatabase,
    gaussian: Gaussian,
    delta: float,
    thetas,
    *,
    strategies: str = "all",
    integrator: ProbabilityIntegrator | None = None,
) -> ThresholdSweepResult:
    """Answer PRQ(gaussian, delta, θ) for every θ in ``thetas`` at the cost
    of (roughly) the single widest query.

    Phases 1+2 run once at θ_min (whose region is a superset of every
    other θ's region); BF acceptance is disabled for that pass because an
    acceptance at θ_min does not certify larger thresholds.  Probabilities
    are evaluated once; each answer set is a simple comparison.
    """
    theta_list = sorted(float(t) for t in thetas)
    if not theta_list:
        raise QueryError("thetas must be non-empty")
    if theta_list[0] <= 0.0 or theta_list[-1] >= 1.0:
        raise QueryError(f"every theta must lie in (0, 1), got {theta_list}")
    evaluator = integrator or ExactIntegrator()
    theta_min = theta_list[0]
    query = ProbabilisticRangeQuery(gaussian, delta, theta_min)

    strategy_list = make_strategies(strategies)
    for strategy in strategy_list:
        strategy.prepare(query)
    if any(s.proves_empty for s in strategy_list):
        empty = {theta: () for theta in theta_list}
        return ThresholdSweepResult((), (), empty)
    rect = None
    for strategy in strategy_list:
        contribution = strategy.search_rect()
        if contribution is None:
            continue
        rect = contribution if rect is None else rect.intersection(contribution)
        if rect is None:
            empty = {theta: () for theta in theta_list}
            return ThresholdSweepResult((), (), empty)
    candidate_ids = database.index.range_search_rect(rect)
    if not candidate_ids:
        empty = {theta: () for theta in theta_list}
        return ThresholdSweepResult((), (), empty)
    points = np.vstack([database.point(i) for i in candidate_ids])
    undecided = np.ones(len(candidate_ids), dtype=bool)
    for strategy in strategy_list:
        codes = strategy.classify(points[undecided])
        idx = np.nonzero(undecided)[0]
        undecided[idx[codes == REJECT]] = False
    keep = np.nonzero(undecided)[0]
    kept_ids = tuple(candidate_ids[i] for i in keep)
    estimates = evaluator.qualification_probabilities(
        gaussian, points[keep], delta
    )
    probabilities = tuple(result.estimate for result in estimates)

    answers: dict[float, tuple[int, ...]] = {}
    for theta in theta_list:
        answers[theta] = tuple(
            sorted(
                obj_id
                for obj_id, probability in zip(kept_ids, probabilities)
                if probability >= theta
            )
        )
    return ThresholdSweepResult(kept_ids, probabilities, answers)

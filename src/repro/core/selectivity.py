"""Selectivity estimation for probabilistic range queries.

A query optimizer facing PRQ(q, δ, θ) wants to predict the Phase-3
workload *before* running the query — e.g. to pick a strategy combination
or an integrator budget.  The integration regions of Figs. 13–16 make this
a density question: the expected candidate count of a strategy is the
integral of the data density over its region.

``SelectivityEstimator`` builds a d-dimensional histogram of the dataset
once, then estimates any strategy's candidate count by sampling its region
(uniformly over the region's bounding rectangle, thinned by region
membership) and summing histogram densities.  Practical for d ≤ 3 where a
dense histogram fits in memory; the constructor refuses larger d.
"""

from __future__ import annotations

import numpy as np

from repro.core.query import ProbabilisticRangeQuery
from repro.core.strategies import Strategy, make_strategies
from repro.errors import QueryError
from repro.geometry.mbr import Rect

__all__ = ["SelectivityEstimator"]

#: Histograms beyond this dimension would be sparse and huge.
_MAX_DIM = 3


class SelectivityEstimator:
    """Histogram-based candidate-count estimator.

    Parameters
    ----------
    points:
        The dataset (n, d), d <= 3.
    bins:
        Histogram bins per dimension.
    """

    def __init__(self, points: np.ndarray, bins: int = 48):
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise QueryError(
                f"points must be a non-empty (n, d) array, got {pts.shape}"
            )
        if pts.shape[1] > _MAX_DIM:
            raise QueryError(
                f"histogram selectivity supports d <= {_MAX_DIM}, got d = "
                f"{pts.shape[1]}; estimate by sampling the index instead"
            )
        if bins < 2:
            raise QueryError(f"bins must be >= 2, got {bins}")
        self._dim = pts.shape[1]
        self._counts, edges = np.histogramdd(pts, bins=bins)
        self._edges = edges
        self._lows = np.array([e[0] for e in edges])
        self._highs = np.array([e[-1] for e in edges])
        self._widths = np.array([e[1] - e[0] for e in edges])
        self._bins = bins
        self.total = pts.shape[0]

    @property
    def dim(self) -> int:
        return self._dim

    # ------------------------------------------------------------------
    # Density queries
    # ------------------------------------------------------------------

    def density_at(self, points: np.ndarray) -> np.ndarray:
        """Points per unit volume at each row (0 outside the data bounds)."""
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        cell_volume = float(np.prod(self._widths))
        raw = (pts - self._lows) / self._widths
        outside = np.any((raw < 0) | (raw > self._bins), axis=1)
        cells = np.clip(np.floor(raw).astype(int), 0, self._bins - 1)
        density = self._counts[tuple(cells.T)] / cell_volume
        density[outside] = 0.0
        return density

    def estimate_in_rect(self, rect: Rect) -> float:
        """Expected number of points inside an axis-aligned rectangle."""
        if rect.dim != self._dim:
            raise QueryError(
                f"rect has dimension {rect.dim}, estimator has {self._dim}"
            )
        # Fractional bin coverage per dimension, as an outer product.
        weights = []
        for axis in range(self._dim):
            edges = self._edges[axis]
            lo = np.clip(rect.lows[axis], edges[0], edges[-1])
            hi = np.clip(rect.highs[axis], edges[0], edges[-1])
            left = np.minimum(np.maximum(lo, edges[:-1]), edges[1:])
            right = np.minimum(np.maximum(hi, edges[:-1]), edges[1:])
            weights.append((right - left) / (edges[1:] - edges[:-1]))
        coverage = weights[0]
        for axis_weights in weights[1:]:
            coverage = np.multiply.outer(coverage, axis_weights)
        return float(np.sum(self._counts * coverage))

    # ------------------------------------------------------------------
    # Strategy workload prediction
    # ------------------------------------------------------------------

    def estimate_candidates(
        self,
        query: ProbabilisticRangeQuery,
        strategies: str | list[Strategy] = "all",
        *,
        n_samples: int = 20_000,
        seed: int = 0,
    ) -> float:
        """Expected Phase-3 candidate count for a strategy combination.

        Monte Carlo over the combined bounding rectangle: sample uniform
        locations, keep those every strategy leaves UNDECIDED (not
        rejected, not BF-accepted), and integrate the data density over
        that region.
        """
        from repro.core.strategies import UNKNOWN

        strategy_list = (
            make_strategies(strategies)
            if isinstance(strategies, str)
            else list(strategies)
        )
        if not strategy_list:
            raise QueryError("at least one strategy is required")
        for strategy in strategy_list:
            strategy.prepare(query)
        if any(s.proves_empty for s in strategy_list):
            return 0.0
        rect: Rect | None = None
        for strategy in strategy_list:
            contribution = strategy.search_rect()
            if contribution is None:
                continue
            rect = contribution if rect is None else rect.intersection(contribution)
            if rect is None:
                return 0.0
        if rect is None:
            raise QueryError("no strategy contributed a search region")

        rng = np.random.default_rng(seed)
        samples = rect.lows + rng.random((n_samples, self._dim)) * rect.extents
        undecided = np.ones(n_samples, dtype=bool)
        for strategy in strategy_list:
            codes = strategy.classify(samples[undecided])
            idx = np.nonzero(undecided)[0]
            undecided[idx[codes != UNKNOWN]] = False
        densities = np.zeros(n_samples)
        densities[undecided] = self.density_at(samples[undecided])
        return float(densities.mean() * rect.volume())

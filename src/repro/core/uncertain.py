"""Range queries when the *targets* are also Gaussian (paper future work).

If the query location is x ~ N(q, Σ_q) and a target's location is
y ~ N(o, Σ_o) with x ⊥ y, the displacement x − y is N(q − o, Σ_q + Σ_o),
so

    P(‖x − y‖ <= δ)  =  P(‖z − o‖ <= δ)  for z ~ N(q, Σ_q + Σ_o)

— the two-sided problem collapses to the paper's one-sided machinery with
a per-target covariance.  This reduction now lives in the unified stage
pipeline: a :class:`repro.core.kinds.UncertainTargetQuery` executed by a
:class:`~repro.core.engine.QueryEngine` whose database carries a
:class:`repro.core.kinds.TargetCovarianceTable` runs Phase 1 with the
conservative convolved reach (:func:`repro.gaussian.conservative_reach_alpha`),
Phase 2 with per-target convolved BF radii, and Phase 3 with the
convolved integrand — through the exact same
:func:`repro.core.stages.execute_pipeline` as every other query kind.

.. deprecated::
    :class:`UncertainDatabase` is a compatibility shim over that unified
    path, kept for one release.  New code should build ::

        db = SpatialDatabase(means, ids=ids,
                             target_table=TargetCovarianceTable.from_objects(objs))
        db.engine(...).execute(UncertainTargetQuery(gaussian, delta, theta))

    which additionally unlocks ``run_batch``, ``repro.serve`` and
    ``repro.shard`` for uncertain-target workloads.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.catalog.rtheta import ExactRThetaLookup
from repro.core.database import SpatialDatabase
from repro.core.kinds import TargetCovarianceTable, UncertainTargetQuery
from repro.core.query import ProbabilisticRangeQuery
from repro.core.stats import QueryStats
from repro.errors import QueryError
from repro.gaussian.distribution import Gaussian
from repro.integrate.base import ProbabilityIntegrator
from repro.integrate.exact import ExactIntegrator

__all__ = ["UncertainObject", "UncertainDatabase"]


@dataclass(frozen=True)
class UncertainObject:
    """A target object whose location is itself Gaussian."""

    obj_id: int
    gaussian: Gaussian

    @property
    def mean(self) -> np.ndarray:
        return self.gaussian.mean


class UncertainDatabase:
    """Targets with Gaussian locations, queried by a Gaussian query object.

    .. deprecated::
        A one-release compatibility shim: construction builds a
        :class:`~repro.core.database.SpatialDatabase` over the target
        means with a :class:`~repro.core.kinds.TargetCovarianceTable`,
        and :meth:`probabilistic_range_query` delegates to the unified
        engine (emitting a :class:`DeprecationWarning`).  Answers are
        identical to the historical implementation.

    Parameters
    ----------
    objects:
        The uncertain targets; ids must be unique, dimensions must agree.
    """

    def __init__(self, objects: Sequence[UncertainObject]):
        if not objects:
            raise QueryError("need at least one uncertain object")
        dims = {obj.gaussian.dim for obj in objects}
        if len(dims) != 1:
            raise QueryError(f"objects have mixed dimensions {sorted(dims)}")
        ids = [obj.obj_id for obj in objects]
        if len(set(ids)) != len(ids):
            raise QueryError("duplicate object ids")
        self._objects = {obj.obj_id: obj for obj in objects}
        self._dim = dims.pop()
        means = np.vstack([obj.mean for obj in objects])
        self._db = SpatialDatabase(
            means,
            ids=ids,
            target_table=TargetCovarianceTable.from_objects(objects),
        )

    @property
    def dim(self) -> int:
        return self._dim

    def __len__(self) -> int:
        return len(self._objects)

    def object(self, obj_id: int) -> UncertainObject:
        try:
            return self._objects[obj_id]
        except KeyError:
            raise QueryError(f"unknown object id {obj_id!r}") from None

    def probabilistic_range_query(
        self,
        query: ProbabilisticRangeQuery,
        *,
        integrator: ProbabilityIntegrator | None = None,
    ) -> tuple[list[int], QueryStats]:
        """Ids of targets with P(‖x − y‖ <= δ) >= θ, plus statistics."""
        warnings.warn(
            "UncertainDatabase is deprecated and will be removed after one "
            "release; build a SpatialDatabase with a TargetCovarianceTable "
            "and execute an UncertainTargetQuery through the unified engine "
            "instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if query.dim != self._dim:
            raise QueryError(
                f"query dimension {query.dim} does not match database "
                f"dimension {self._dim}"
            )
        evaluator = integrator or ExactIntegrator()
        kinded = UncertainTargetQuery(query.gaussian, query.delta, query.theta)
        engine = self._db.engine(strategies="all", integrator=evaluator)
        result = engine.execute(kinded)
        return list(result.ids), result.stats

    # Convenience: build from exact points with one shared covariance.
    @classmethod
    def from_points(
        cls, points: np.ndarray, sigma: np.ndarray
    ) -> "UncertainDatabase":
        pts = np.asarray(points, dtype=float)
        return cls(
            [
                UncertainObject(i, Gaussian(row, sigma))
                for i, row in enumerate(pts)
            ]
        )


# Re-exported for API symmetry with the exact-target path.
ExactRThetaLookup = ExactRThetaLookup

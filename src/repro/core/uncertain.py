"""Range queries when the *targets* are also Gaussian (paper future work).

If the query location is x ~ N(q, Σ_q) and a target's location is
y ~ N(o, Σ_o) with x ⊥ y, the displacement x − y is N(q − o, Σ_q + Σ_o),
so

    P(‖x − y‖ <= δ)  =  P(‖z − o‖ <= δ)  for z ~ N(q, Σ_q + Σ_o)

— the two-sided problem collapses to the paper's one-sided machinery with
a per-target covariance.  ``UncertainDatabase`` exploits this: Phase 1
searches an R*-tree over the target *means*, padded by each target's own
conservative reach; Phase 2 applies the BF bounds per target under the
convolved Gaussian; Phase 3 evaluates the survivors exactly or by Monte
Carlo.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.catalog.rtheta import ExactRThetaLookup
from repro.core.query import ProbabilisticRangeQuery
from repro.core.stats import QueryStats
from repro.errors import QueryError
from repro.gaussian.distribution import Gaussian
from repro.gaussian.radial import alpha_for_mass
from repro.geometry.mbr import Rect
from repro.index.rtree import RStarTree
from repro.integrate.base import ProbabilityIntegrator
from repro.integrate.exact import ExactIntegrator

__all__ = ["UncertainObject", "UncertainDatabase"]


@dataclass(frozen=True)
class UncertainObject:
    """A target object whose location is itself Gaussian."""

    obj_id: int
    gaussian: Gaussian

    @property
    def mean(self) -> np.ndarray:
        return self.gaussian.mean


class UncertainDatabase:
    """Targets with Gaussian locations, queried by a Gaussian query object.

    Parameters
    ----------
    objects:
        The uncertain targets; ids must be unique, dimensions must agree.
    """

    def __init__(self, objects: Sequence[UncertainObject]):
        if not objects:
            raise QueryError("need at least one uncertain object")
        dims = {obj.gaussian.dim for obj in objects}
        if len(dims) != 1:
            raise QueryError(f"objects have mixed dimensions {sorted(dims)}")
        ids = [obj.obj_id for obj in objects]
        if len(set(ids)) != len(ids):
            raise QueryError("duplicate object ids")
        self._objects = {obj.obj_id: obj for obj in objects}
        self._dim = dims.pop()
        means = np.vstack([obj.mean for obj in objects])
        self._index = RStarTree(self._dim)
        self._index.bulk_load(ids, means)
        # Conservative per-object reach: the radius holding all but
        # epsilon of the object's own mass, used to pad Phase-1 boxes.
        self._max_sigma_eig = max(
            float(obj.gaussian.eigenvalues[0]) for obj in objects
        )

    @property
    def dim(self) -> int:
        return self._dim

    def __len__(self) -> int:
        return len(self._objects)

    def object(self, obj_id: int) -> UncertainObject:
        try:
            return self._objects[obj_id]
        except KeyError:
            raise QueryError(f"unknown object id {obj_id!r}") from None

    def probabilistic_range_query(
        self,
        query: ProbabilisticRangeQuery,
        *,
        integrator: ProbabilityIntegrator | None = None,
    ) -> tuple[list[int], QueryStats]:
        """Ids of targets with P(‖x − y‖ <= δ) >= θ, plus statistics."""
        if query.dim != self._dim:
            raise QueryError(
                f"query dimension {query.dim} does not match database "
                f"dimension {self._dim}"
            )
        evaluator = integrator or ExactIntegrator()
        stats = QueryStats()

        # Phase 1: search target means.  Under the convolved Gaussian
        # N(q, Sigma_q + Sigma_o) a qualifying target mean must lie within
        # alpha_upper of q; we bound alpha_upper over all targets using the
        # worst-case covariance Sigma_q + max_eig*I (larger covariance =>
        # flatter density => larger pruning radius is NOT guaranteed, so we
        # bound via the isotropic upper bounding function directly).
        with stats.time_phase("search"):
            lam_par = 1.0 / (query.gaussian.eigenvalues[0] + self._max_sigma_eig)
            dim = self._dim
            # det(Sigma_q + Sigma_o) >= det(Sigma_q); the scaled theta of
            # Eq. 29 shrinks with a smaller determinant, and a smaller theta
            # gives a larger (safer) alpha, so use det(Sigma_q).
            sqrt_det = math.exp(0.5 * query.gaussian.log_det_sigma)
            scaled_theta = lam_par ** (dim / 2.0) * sqrt_det * query.theta
            if scaled_theta >= 1.0:
                return [], stats
            beta = alpha_for_mass(
                dim, math.sqrt(lam_par) * query.delta, scaled_theta
            )
            if beta is None:
                return [], stats
            alpha = beta / math.sqrt(lam_par)
            rect = Rect.from_center(query.center, np.full(dim, alpha))
            candidate_ids = self._index.range_search_rect(rect)
            stats.retrieved = len(candidate_ids)

        # Phases 2+3 per candidate under its convolved Gaussian.
        accepted: list[int] = []
        with stats.time_phase("integrate"):
            for obj_id in candidate_ids:
                target = self._objects[obj_id]
                combined = Gaussian(
                    query.center, query.gaussian.sigma + target.gaussian.sigma
                )
                stats.integrations += 1
                result = evaluator.qualification_probability(
                    combined, target.mean, query.delta
                )
                stats.integration_samples += result.n_samples
                if result.meets_threshold(query.theta):
                    accepted.append(obj_id)
        accepted.sort()
        stats.results = len(accepted)
        return accepted, stats

    # Convenience: build from exact points with one shared covariance.
    @classmethod
    def from_points(
        cls, points: np.ndarray, sigma: np.ndarray
    ) -> "UncertainDatabase":
        pts = np.asarray(points, dtype=float)
        return cls(
            [
                UncertainObject(i, Gaussian(row, sigma))
                for i, row in enumerate(pts)
            ]
        )


# Re-exported for API symmetry with the exact-target path.
ExactRThetaLookup = ExactRThetaLookup

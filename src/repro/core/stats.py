"""Per-query statistics: phase timings and candidate counters.

The paper's evaluation reports exactly these quantities — Table I is
Phase-1+2+3 wall time, Table II/III are candidate counts entering Phase 3
— so the engine records them on every execution.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["QueryStats", "BatchStats"]


@dataclass
class QueryStats:
    """Counters and wall-clock timings for one query execution.

    ``integrations`` is the paper's headline cost driver: the number of
    candidates that reached numerical integration (the "number of
    candidates" columns of Tables II and III).
    """

    retrieved: int = 0
    rejected_by_filter: dict[str, int] = field(default_factory=dict)
    accepted_without_integration: int = 0
    integrations: int = 0
    results: int = 0
    #: Wall time per pipeline stage, keyed by the stage's phase label.
    #: A planned (``strategies="auto"``) engine adds ``"plan"`` ahead of
    #: the pipeline's own ``"search"``/``"filter"``/``"integrate"``;
    #: other callers of :meth:`time_phase` may introduce further keys.
    #: ``Observability.record_query`` folds each entry into the
    #: ``repro_phase_seconds{phase=...}`` histogram (docs/observability.md).
    phase_seconds: dict[str, float] = field(default_factory=dict)
    integration_samples: int = 0
    #: Phase-3 decisions keyed by the deciding evaluator's method label —
    #: for the cascade this is the per-tier breakdown
    #: ("cascade-sandwich"/"cascade-ruben"/"cascade-imhof").
    tier_decisions: dict[str, int] = field(default_factory=dict)
    empty_by_strategy: str | None = None
    #: True when a monitoring session served Phase 1 from its cache.
    cache_hit: bool = False
    #: Strategy names the cost-based planner chose (None = fixed engine).
    plan_strategies: tuple[str, ...] | None = None
    #: Phase-1 mode the planner chose ("intersect"/"primary").
    plan_phase1: str | None = None
    #: True when the plan came from the planner's LRU cache (None = no
    #: planner ran for this query).
    plan_cache_hit: bool | None = None
    #: Planner's predicted Phase-3 candidate count — compare against
    #: ``integrations`` to audit cost-model calibration.
    predicted_integrations: float | None = None
    #: Planner's predicted total cost in seconds.
    predicted_seconds: float | None = None

    @contextmanager
    def time_phase(self, phase: str):
        """Accumulate wall time into ``phase_seconds[phase]``.

        The engine uses the stage labels ``'search'``/``'filter'``/
        ``'integrate'`` plus ``'plan'`` when a cost-based planner runs;
        the label set is open — whatever key is passed becomes a
        ``phase_seconds`` entry (and a ``phase`` label value in the
        exported metrics).
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + elapsed

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    @property
    def total_rejected(self) -> int:
        return sum(self.rejected_by_filter.values())

    def note_rejections(self, strategy_name: str, count: int) -> None:
        if count:
            self.rejected_by_filter[strategy_name] = (
                self.rejected_by_filter.get(strategy_name, 0) + count
            )

    def note_decision(self, method: str, count: int = 1) -> None:
        """Record a Phase-3 θ-decision made by evaluator tier ``method``."""
        if count:
            self.tier_decisions[method] = (
                self.tier_decisions.get(method, 0) + count
            )

    def summary(self) -> str:
        """One-line human-readable digest used by the bench harness."""
        phases = ", ".join(
            f"{name}={seconds * 1e3:.1f}ms"
            for name, seconds in self.phase_seconds.items()
        )
        return (
            f"retrieved={self.retrieved} rejected={self.total_rejected} "
            f"accepted_free={self.accepted_without_integration} "
            f"integrated={self.integrations} results={self.results} [{phases}]"
        )


@dataclass
class BatchStats:
    """Aggregate counters over one ``QueryEngine.run``/``run_batch`` call.

    Per-query ``QueryStats`` remain available on each ``QueryResult``;
    this rolls them up into the totals a capacity planner reads first.
    ``wall_seconds`` is the end-to-end batch wall time — under parallel
    execution it is less than ``cpu_seconds``, the sum of the per-query
    phase timings.
    """

    n_queries: int = 0
    workers: int = 1
    wall_seconds: float = 0.0
    #: Queries that failed with a captured typed error
    #: (``run_batch(..., return_errors=True)``); their counters are all
    #: zero, so the other aggregates cover successful queries only.
    failed: int = 0
    retrieved: int = 0
    rejected_by_filter: dict[str, int] = field(default_factory=dict)
    accepted_without_integration: int = 0
    integrations: int = 0
    integration_samples: int = 0
    tier_decisions: dict[str, int] = field(default_factory=dict)
    results: int = 0
    phase_seconds: dict[str, float] = field(default_factory=dict)
    latencies: list[float] = field(default_factory=list)
    #: Queries that went through the cost-based planner, and how many of
    #: those plans were served from the planner's LRU cache.
    planned_queries: int = 0
    plan_cache_hits: int = 0
    #: Sum of the planner's predicted Phase-3 candidate counts — compare
    #: against ``integrations`` to audit cost-model calibration.
    predicted_integrations: float = 0.0

    def merge(self, stats: QueryStats) -> None:
        """Fold one query's counters into the batch totals."""
        self.n_queries += 1
        self.retrieved += stats.retrieved
        for name, count in stats.rejected_by_filter.items():
            self.rejected_by_filter[name] = (
                self.rejected_by_filter.get(name, 0) + count
            )
        self.accepted_without_integration += stats.accepted_without_integration
        self.integrations += stats.integrations
        self.integration_samples += stats.integration_samples
        for method, count in stats.tier_decisions.items():
            self.tier_decisions[method] = (
                self.tier_decisions.get(method, 0) + count
            )
        self.results += stats.results
        if stats.plan_strategies is not None:
            self.planned_queries += 1
            self.plan_cache_hits += bool(stats.plan_cache_hit)
            self.predicted_integrations += stats.predicted_integrations or 0.0
        for phase, seconds in stats.phase_seconds.items():
            self.phase_seconds[phase] = (
                self.phase_seconds.get(phase, 0.0) + seconds
            )
        self.latencies.append(stats.total_seconds)

    @property
    def cpu_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    @property
    def total_rejected(self) -> int:
        return sum(self.rejected_by_filter.values())

    @property
    def queries_per_second(self) -> float:
        if self.wall_seconds > 0:
            return self.n_queries / self.wall_seconds
        return float("inf")

    def summary(self) -> str:
        """One-line digest of the whole batch."""
        failures = f" failed={self.failed}" if self.failed else ""
        return (
            f"queries={self.n_queries} workers={self.workers} "
            f"wall={self.wall_seconds * 1e3:.1f}ms "
            f"retrieved={self.retrieved} rejected={self.total_rejected} "
            f"accepted_free={self.accepted_without_integration} "
            f"integrated={self.integrations} results={self.results}"
            f"{failures}"
        )

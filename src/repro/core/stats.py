"""Per-query statistics: phase timings and candidate counters.

The paper's evaluation reports exactly these quantities — Table I is
Phase-1+2+3 wall time, Table II/III are candidate counts entering Phase 3
— so the engine records them on every execution.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["QueryStats"]


@dataclass
class QueryStats:
    """Counters and wall-clock timings for one query execution.

    ``integrations`` is the paper's headline cost driver: the number of
    candidates that reached numerical integration (the "number of
    candidates" columns of Tables II and III).
    """

    retrieved: int = 0
    rejected_by_filter: dict[str, int] = field(default_factory=dict)
    accepted_without_integration: int = 0
    integrations: int = 0
    results: int = 0
    phase_seconds: dict[str, float] = field(default_factory=dict)
    integration_samples: int = 0
    empty_by_strategy: str | None = None
    #: True when a monitoring session served Phase 1 from its cache.
    cache_hit: bool = False

    @contextmanager
    def time_phase(self, phase: str):
        """Accumulate wall time under ``phase`` ('search'/'filter'/'integrate')."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + elapsed

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    @property
    def total_rejected(self) -> int:
        return sum(self.rejected_by_filter.values())

    def note_rejections(self, strategy_name: str, count: int) -> None:
        if count:
            self.rejected_by_filter[strategy_name] = (
                self.rejected_by_filter.get(strategy_name, 0) + count
            )

    def summary(self) -> str:
        """One-line human-readable digest used by the bench harness."""
        phases = ", ".join(
            f"{name}={seconds * 1e3:.1f}ms"
            for name, seconds in self.phase_seconds.items()
        )
        return (
            f"retrieved={self.retrieved} rejected={self.total_rejected} "
            f"accepted_free={self.accepted_without_integration} "
            f"integrated={self.integrations} results={self.results} [{phases}]"
        )

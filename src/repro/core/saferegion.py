"""Pre-approximated safe regions for standing (continuous) queries.

The paper's moving-object setting issues the *same* PRQ(q, δ, θ) from a
stream of nearby locations.  Re-running the pipeline per location wastes
nearly all of its work: the answer of a probabilistic range query is
remarkably stable under small query-object motion.  This module makes
that stability *provable* and *checkable in O(1)*, following the
pre-approximation idea of "A PRQ Search Method for Probabilistic
Objects" (arXiv:1210.4663): reduce the standing query once to a
simplified region whose answer is guaranteed to survive while the query
object stays inside it.

The construction reuses the paper's own bounding-function machinery
(Definition 6 / Eq. 21).  In the whitened frame of Σ the qualification
probability of a target at Mahalanobis distance ``m`` from the query
mean is sandwiched by two noncentral-χ² CDFs that depend on ``m`` alone
(:func:`repro.gaussian.quadform.chi2_sandwich_bounds_block`):

    F(δ²/λ_max; d, m²)  ≤  P(‖x − o‖ ≤ δ)  ≤  F(δ²/λ_min; d, m²).

Both curves are strictly decreasing in ``m``, so inverting them at θ
(:func:`repro.gaussian.radial.alpha_for_mass` — exactly the BF catalog
computation) yields two *alpha-shell* radii:

- ``r_accept`` — every target with ``m ≤ r_accept`` **provably
  qualifies** (the inner shell, the paper's α∥);
- ``r_reject`` — every target with ``m > r_reject`` **provably does
  not** (the outer shell, the paper's α⊥).

Because Mahalanobis distance obeys the triangle inequality (Σ fixed), a
query-mean shift of Mahalanobis length ``s`` moves every target's
distance by at most ``s``.  Each certain target therefore carries a
*slack* — how far the mean may travel before its decision could flip —
and the minimum slack is the subscription's safe radius.  Targets whose
probability lies strictly between the shells (the *border* objects,
decided at build time by full integration) carry no slack: any motion
re-opens them, but only them.

:meth:`SafeRegion.classify` turns one location/covariance update into a
:class:`RegionDecision`:

- ``DECISION_SURVIVED`` — the shift is covered by every slack; the
  anchor answer is provably still exact.  Cost: one d×d mat-vec and a
  binary search.
- ``DECISION_REINTEGRATE`` — only the listed cached rows (border
  objects plus slack-exhausted certains) need Phase 2/3 again; every
  other decision is proven to stand.
- ``DECISION_REPLAN`` — the covariance changed, the translated Phase-1
  rectangle escaped the cached candidate superset, or so many slacks
  broke that a fresh anchor is cheaper.  The region must be rebuilt
  around the new location.

Soundness of the candidate cache: the cached superset is an *expanded*
Phase-1 rectangle (margin-scaled, exactly as the legacy
``MonitoringSession`` cached).  With Σ, δ, θ fixed, every strategy's
Phase-1 rectangle is translation-equivariant in the mean, so the new
rectangle fits inside the cached one iff the Euclidean shift respects
the per-dimension margins — checked in O(d) without touching any
strategy.  The full subscription contract lives in
``docs/monitoring.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.query import ProbabilisticRangeQuery
from repro.errors import QueryError
from repro.gaussian.distribution import Gaussian
from repro.gaussian.radial import alpha_for_mass
from repro.geometry.mbr import Rect

__all__ = [
    "SafeRegion",
    "RegionDecision",
    "alpha_shell_radii",
    "DECISION_SURVIVED",
    "DECISION_REINTEGRATE",
    "DECISION_REPLAN",
]

#: The shift is covered by every slack — the anchor answer is still exact.
DECISION_SURVIVED = "survived"
#: Only the listed cached rows need Phase 2/3 again.
DECISION_REINTEGRATE = "reintegrate"
#: The region no longer covers the update — rebuild around the new anchor.
DECISION_REPLAN = "replan"


def alpha_shell_radii(
    gaussian: Gaussian, delta: float, theta: float
) -> tuple[float | None, float | None]:
    """The certain-accept / certain-reject Mahalanobis radii.

    Returns ``(r_accept, r_reject)``:

    - ``r_accept`` — targets at Mahalanobis distance ``m ≤ r_accept``
      from the mean have qualification probability provably ≥ θ
      (``None`` when not even a target at the mean can be *proven* to
      qualify through the sandwich lower bound);
    - ``r_reject`` — targets with ``m > r_reject`` provably have
      probability < θ (``None`` when not even the mean itself can reach
      θ under the sandwich upper bound — the query answer is then empty
      for *every* location, Σ and δ being what they are).

    Both come from inverting Eq. 21's noncentral-χ² mass curve, the same
    root-finding the BF catalog performs (λ∥ = 1/λ_max, λ⊥ = 1/λ_min).
    """
    if delta <= 0:
        raise QueryError(f"delta must be > 0, got {delta}")
    if not 0.0 < theta < 1.0:
        raise QueryError(f"theta must be in (0, 1), got {theta}")
    lam_max = float(gaussian.eigenvalues[0])
    lam_min = float(gaussian.eigenvalues[-1])
    r_accept = alpha_for_mass(gaussian.dim, delta / math.sqrt(lam_max), theta)
    r_reject = alpha_for_mass(gaussian.dim, delta / math.sqrt(lam_min), theta)
    return r_accept, r_reject


@dataclass(frozen=True)
class RegionDecision:
    """What one location/covariance update requires of a subscription."""

    #: One of :data:`DECISION_SURVIVED` / :data:`DECISION_REINTEGRATE` /
    #: :data:`DECISION_REPLAN`.
    kind: str
    #: Why a replan is required (``"covariance"``, ``"cache-overrun"``,
    #: ``"anchor-empty"``, ``"slack-exhausted"``) — empty otherwise.
    reason: str = ""
    #: Mahalanobis length of the mean shift from the anchor.
    shift: float = 0.0
    #: Row indices (into the region's cached arrays) that must be
    #: re-decided by Phase 2/3; empty unless ``kind == "reintegrate"``.
    recheck: np.ndarray | None = None

    @property
    def n_recheck(self) -> int:
        return 0 if self.recheck is None else int(self.recheck.size)


class SafeRegion:
    """One standing query's pre-approximation, anchored at build time.

    Build with :meth:`build`; interrogate updates with :meth:`classify`;
    assemble the surviving part of the answer with
    :meth:`certain_accept_ids`.  Instances are immutable after
    construction and safe to share across reader threads.
    """

    __slots__ = (
        "query",
        "r_accept",
        "r_reject",
        "always_empty",
        "anchor_rect",
        "cached_rect",
        "ids",
        "points",
        "mahal",
        "accepted_mask",
        "slack",
        "answer",
        "_order",
        "_sorted_slack",
        "n_border",
    )

    def __init__(
        self,
        query: ProbabilisticRangeQuery,
        *,
        r_accept: float | None,
        r_reject: float | None,
        anchor_rect: Rect | None,
        cached_rect: Rect | None,
        ids: np.ndarray,
        points: np.ndarray,
        answer: tuple[int, ...],
    ):
        self.query = query
        self.r_accept = r_accept
        self.r_reject = r_reject
        #: With ``r_reject is None`` even a target at the mean provably
        #: misses θ: the answer is () for every location of this shape.
        self.always_empty = r_reject is None
        self.anchor_rect = anchor_rect
        self.cached_rect = cached_rect
        self.ids = np.asarray(ids, dtype=np.int64)
        self.points = np.asarray(points, dtype=float)
        self.answer = tuple(int(i) for i in answer)
        gaussian = query.gaussian
        if self.ids.size:
            self.mahal = gaussian.mahalanobis(self.points)
            self.accepted_mask = np.isin(
                self.ids, np.asarray(self.answer, dtype=np.int64)
            )
        else:
            self.mahal = np.empty(0)
            self.accepted_mask = np.empty(0, dtype=bool)
        # Per-row slack: how far (Mahalanobis) the mean may move before
        # this row's anchor decision could flip.  Accepted rows are
        # certain while m + s <= r_accept; rejected rows while
        # m - s > r_reject.  Border rows (slack <= 0) reopen on any
        # motion.
        accept_radius = -np.inf if r_accept is None else float(r_accept)
        reject_radius = np.inf if r_reject is None else float(r_reject)
        slack = np.where(
            self.accepted_mask,
            accept_radius - self.mahal,
            self.mahal - reject_radius,
        )
        if self.always_empty:
            # No row can ever qualify: every rejection is uncondition-
            # ally certain, whatever the (same-shape) location.
            slack = np.full(self.mahal.shape, np.inf)
        self.slack = slack
        self._order = np.argsort(slack, kind="stable")
        self._sorted_slack = slack[self._order]
        self.n_border = int(np.count_nonzero(slack <= 0.0))

    # -- construction ---------------------------------------------------

    @classmethod
    def build(
        cls,
        query: ProbabilisticRangeQuery,
        answer: tuple[int, ...],
        *,
        index,
        point_of,
        anchor_rect: Rect | None,
        margin: float = 0.5,
        reuse: "SafeRegion | None" = None,
        radii: tuple[float | None, float | None] | None = None,
    ) -> "SafeRegion":
        """Anchor a safe region at ``query`` whose full answer is ``answer``.

        ``index``/``point_of`` come from the database (``db.index`` and
        ``db.point``); ``anchor_rect`` is the query's combined Phase-1
        rectangle (``None`` when a strategy proved the result empty).
        ``margin`` scales the cached rectangle (0.5 = 50 % wider per
        side), trading memory for how far the object can roam before a
        cache rebuild.  ``reuse`` donates its cached superset when the
        new anchor rectangle still fits inside it.  ``radii`` skips the
        shell-radius inversion when the caller already holds it — the
        radii depend only on (Σ spectrum, δ, θ), so a re-anchor after
        pure translation passes the old region's pair through.
        """
        if margin < 0:
            raise QueryError(f"margin must be >= 0, got {margin}")
        r_accept, r_reject = (
            radii
            if radii is not None
            else alpha_shell_radii(query.gaussian, query.delta, query.theta)
        )
        if anchor_rect is None:
            cached_rect = None if reuse is None else reuse.cached_rect
            if cached_rect is not None and reuse is not None:
                return cls(
                    query,
                    r_accept=r_accept,
                    r_reject=r_reject,
                    anchor_rect=None,
                    cached_rect=cached_rect,
                    ids=reuse.ids,
                    points=reuse.points,
                    answer=answer,
                )
            return cls(
                query,
                r_accept=r_accept,
                r_reject=r_reject,
                anchor_rect=None,
                cached_rect=None,
                ids=np.empty(0, dtype=np.int64),
                points=np.empty((0, query.dim)),
                answer=answer,
            )
        if (
            reuse is not None
            and reuse.cached_rect is not None
            and reuse.cached_rect.contains_rect(anchor_rect)
        ):
            cached_rect = reuse.cached_rect
            ids, points = reuse.ids, reuse.points
        else:
            cached_rect = Rect.from_center(
                anchor_rect.center,
                (anchor_rect.extents / 2.0) * (1.0 + margin),
            )
            id_list = index.range_search_rect(cached_rect)
            ids = np.asarray(id_list, dtype=np.int64)
            points = (
                np.vstack([point_of(int(i)) for i in id_list])
                if id_list
                else np.empty((0, query.dim))
            )
        return cls(
            query,
            r_accept=r_accept,
            r_reject=r_reject,
            anchor_rect=anchor_rect,
            cached_rect=cached_rect,
            ids=ids,
            points=points,
            answer=answer,
        )

    # -- update classification ------------------------------------------

    @property
    def safe_radius(self) -> float:
        """Largest Mahalanobis shift under which the answer survives as-is.

        ``0.0`` whenever border objects exist (any motion reopens them);
        ``inf`` for provably-empty-everywhere shapes.
        """
        if self.always_empty:
            return float("inf")
        if self.n_border:
            return 0.0
        if self._sorted_slack.size == 0:
            return float("inf")
        return float(self._sorted_slack[0])

    def shift_of(self, mean: np.ndarray) -> float:
        """Mahalanobis length of ``mean``'s offset from the anchor mean."""
        return float(
            self.query.gaussian.mahalanobis(
                np.asarray(mean, dtype=float).reshape(1, -1)
            )[0]
        )

    def classify(
        self,
        mean: np.ndarray,
        sigma: np.ndarray | None = None,
        *,
        replan_fraction: float = 0.35,
        replan_min: int = 8,
    ) -> RegionDecision:
        """Decide what one location/covariance update requires.

        ``sigma=None`` means "covariance unchanged".  A changed
        covariance always replans: the shell radii, the whitening frame
        and the Phase-1 rectangle geometry all depend on Σ.
        ``replan_fraction``/``replan_min`` bound how many cached rows
        may be re-decided in place before a fresh anchor is considered
        cheaper than patching the old one.
        """
        anchor = self.query.gaussian
        if sigma is not None and not np.array_equal(sigma, anchor.sigma):
            return RegionDecision(DECISION_REPLAN, reason="covariance")
        mean_arr = np.asarray(mean, dtype=float)
        if mean_arr.shape != anchor.mean.shape:
            raise QueryError(
                f"update mean shape {mean_arr.shape} does not match "
                f"anchor shape {anchor.mean.shape}"
            )
        offset = mean_arr - anchor.mean
        if not np.any(offset):
            return RegionDecision(DECISION_SURVIVED)
        if self.always_empty:
            return RegionDecision(DECISION_SURVIVED, shift=self.shift_of(mean_arr))
        if self.anchor_rect is None:
            # The anchor intersection proved empty position-dependently;
            # there is no translated rectangle to validate the cache
            # against, so any real motion needs a fresh look.
            return RegionDecision(DECISION_REPLAN, reason="anchor-empty")
        assert self.cached_rect is not None
        if not (
            np.all(self.anchor_rect.lows + offset >= self.cached_rect.lows)
            and np.all(self.anchor_rect.highs + offset <= self.cached_rect.highs)
        ):
            return RegionDecision(DECISION_REPLAN, reason="cache-overrun")
        shift = self.shift_of(mean_arr)
        # Rows whose slack does not strictly dominate the shift must be
        # re-decided (<=: boundary rows re-check, conservatively).
        k = int(np.searchsorted(self._sorted_slack, shift, side="right"))
        if k == 0:
            return RegionDecision(DECISION_SURVIVED, shift=shift)
        # Border rows are rechecked under *any* anchor with this Σ —
        # re-anchoring cannot shrink the indeterminate shell — so only
        # the slack-exhausted rows beyond them argue for a replan.
        if k - self.n_border > max(replan_min, int(replan_fraction * self.ids.size)):
            return RegionDecision(
                DECISION_REPLAN, reason="slack-exhausted", shift=shift
            )
        return RegionDecision(
            DECISION_REINTEGRATE, shift=shift, recheck=self._order[:k]
        )

    def certain_accept_ids(self, decision: RegionDecision) -> list[int]:
        """Accepted ids whose slack survives ``decision``'s shift.

        Together with the re-decided rows of ``decision.recheck`` this
        is the full answer at the shifted location: every other cached
        row is a proven reject, and everything outside the cached
        superset lies outside the (translated) Phase-1 rectangle.
        """
        if decision.recheck is None or decision.recheck.size == 0:
            return [int(i) for i in self.answer]
        keep = np.ones(self.ids.size, dtype=bool)
        keep[decision.recheck] = False
        mask = keep & self.accepted_mask
        return [int(i) for i in self.ids[mask]]
